// Cross-engine matrix: every pair of engines (sequential, shared-memory,
// dataflow x 3 join strategies, external, incremental) must agree exactly
// on the same data — the library's strongest consistency guarantee,
// swept over parameters.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "core/incremental.h"
#include "data/io.h"
#include "external/external_detector.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

using Case = std::tuple<double /*eps*/, int /*min_pts*/>;

class EngineMatrixTest : public ::testing::TestWithParam<Case> {};

TEST_P(EngineMatrixTest, AllSevenPathsAgree) {
  const auto [eps, min_pts] = GetParam();
  Rng rng(777);
  const PointSet ps = testing::ClusteredPoints(&rng, 1200, 2, 4, 0.25);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;

  auto sequential = DetectSequential(ps, params);
  ASSERT_TRUE(sequential.ok());
  const auto& expected = sequential->outliers;

  // Shared memory.
  {
    ThreadPool pool(3);
    auto r = DetectSharedMemory(ps, params, &pool);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->outliers, expected) << "shared-memory";
    EXPECT_EQ(r->kinds, sequential->kinds);
  }
  // Dataflow, all join strategies.
  dataflow::ExecutionContext ctx(2, 6);
  for (JoinStrategy join : {JoinStrategy::kPlain, JoinStrategy::kBroadcast,
                            JoinStrategy::kGrouped}) {
    Params pp = params;
    pp.engine = Engine::kParallel;
    pp.join = join;
    auto r = DetectParallel(ps, pp, &ctx);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->outliers, expected) << JoinStrategyName(join);
  }
  // External (via a temp file, forced multi-stripe).
  {
    // Pid-unique path: the three sweep cases run as sibling processes
    // against the same TempDir, and a fixed name lets one case remove or
    // truncate the file while another is streaming it.
    const std::string path = ::testing::TempDir() + "/engine_matrix_" +
                             std::to_string(::getpid()) + ".dbsc";
    ASSERT_TRUE(SavePointsBinary(path, ps).ok());
    external::ExternalParams ext;
    ext.eps = eps;
    ext.min_pts = min_pts;
    ext.target_stripe_points = 150;
    ext.tmp_dir = ::testing::TempDir();
    auto r = external::DetectExternal(path, ext);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->outliers, expected) << "external";
    std::remove(path.c_str());
  }
  // Incremental.
  {
    auto det = IncrementalDetector::Create(2, params);
    ASSERT_TRUE(det.ok());
    ASSERT_TRUE(det->AddBatch(ps).ok());
    EXPECT_EQ(det->Outliers(), expected) << "incremental";
    EXPECT_EQ(det->kinds(), sequential->kinds);
  }
}

TEST_P(EngineMatrixTest, ScoringEnginesAgreeOnDistances) {
  const auto [eps, min_pts] = GetParam();
  Rng rng(778);
  const PointSet ps = testing::ClusteredPoints(&rng, 800, 3, 3, 0.3);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  params.compute_scores = true;
  auto sequential = DetectSequential(ps, params);
  ASSERT_TRUE(sequential.ok());
  ThreadPool pool(3);
  auto shared = DetectSharedMemory(ps, params, &pool);
  ASSERT_TRUE(shared.ok());
  ASSERT_EQ(shared->core_distance.size(), sequential->core_distance.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(shared->core_distance[i], sequential->core_distance[i])
        << "point " << i;
  }
  // The dataflow engine rejects scoring explicitly.
  dataflow::ExecutionContext ctx(2, 4);
  Params pp = params;
  pp.engine = Engine::kParallel;
  auto rejected = DetectParallel(ps, pp, &ctx);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineMatrixTest,
                         ::testing::Values(Case{0.9, 4}, Case{1.8, 10},
                                           Case{4.0, 25}),
                         [](const auto& info) {
                           return "case" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace dbscout::core

#include "core/incremental.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "datasets/synthetic.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

Params MakeParams(double eps, int min_pts) {
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  return params;
}

TEST(IncrementalTest, RejectsInvalidConfig) {
  EXPECT_FALSE(IncrementalDetector::Create(0, MakeParams(1.0, 5)).ok());
  EXPECT_FALSE(IncrementalDetector::Create(2, MakeParams(0.0, 5)).ok());
  EXPECT_FALSE(IncrementalDetector::Create(2, MakeParams(1.0, 0)).ok());
  EXPECT_FALSE(
      IncrementalDetector::Create(kMaxDims + 1, MakeParams(1.0, 5)).ok());
}

TEST(IncrementalTest, RejectsBadPoints) {
  auto det = IncrementalDetector::Create(2, MakeParams(1.0, 5));
  ASSERT_TRUE(det.ok());
  const double wrong_dims[] = {1.0};
  EXPECT_FALSE(det->Add({wrong_dims, 1}).ok());
  const double nan_point[] = {1.0, std::nan("")};
  EXPECT_FALSE(det->Add({nan_point, 2}).ok());
}

TEST(IncrementalTest, SinglePointLifecycle) {
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 2));
  ASSERT_TRUE(det.ok());
  const double p0[] = {0.0};
  auto idx = det->Add({p0, 1});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0u);
  EXPECT_EQ(det->KindOf(0), PointKind::kOutlier);
  // A second point within eps promotes both to core (count 2 >= minPts 2).
  const double p1[] = {0.5};
  ASSERT_TRUE(det->Add({p1, 1}).ok());
  EXPECT_EQ(det->KindOf(0), PointKind::kCore);
  EXPECT_EQ(det->KindOf(1), PointKind::kCore);
  EXPECT_TRUE(det->Outliers().empty());
}

TEST(IncrementalTest, OutlierRescuedByLaterInsertions) {
  // A lone point is an outlier until enough mass arrives nearby to form a
  // dense region that covers it.
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 4));
  ASSERT_TRUE(det.ok());
  const double lone[] = {0.9};
  ASSERT_TRUE(det->Add({lone, 1}).ok());
  EXPECT_EQ(det->KindOf(0), PointKind::kOutlier);
  for (int i = 0; i < 4; ++i) {
    const double p[] = {0.0};
    ASSERT_TRUE(det->Add({p, 1}).ok());
  }
  // The stack of four at 0.0 plus the lone point at 0.9: stack counts are
  // 5 >= 4 -> core; the lone point (count 5, also >= 4) becomes core too.
  EXPECT_EQ(det->KindOf(0), PointKind::kCore);
}

class IncrementalEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, int, uint64_t>> {};

TEST_P(IncrementalEquivalenceTest, MatchesBatchDetectionAtEveryCheckpoint) {
  const auto [eps, min_pts, seed] = GetParam();
  Rng rng(seed);
  const PointSet stream = testing::ClusteredPoints(&rng, 600, 2, 3, 0.25);
  auto det = IncrementalDetector::Create(2, MakeParams(eps, min_pts));
  ASSERT_TRUE(det.ok());
  const Params batch_params = MakeParams(eps, min_pts);
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(det->Add(stream[i]).ok());
    // Checkpoint at several prefixes, including awkward ones.
    if (i == 0 || i == 7 || i == 99 || i == 350 || i + 1 == stream.size()) {
      PointSet prefix(2);
      for (size_t j = 0; j <= i; ++j) {
        prefix.Add(stream[j]);
      }
      auto batch = DetectSequential(prefix, batch_params);
      ASSERT_TRUE(batch.ok());
      EXPECT_EQ(det->kinds(), batch->kinds) << "prefix " << i + 1;
      EXPECT_EQ(det->Outliers(), batch->outliers);
      EXPECT_EQ(det->num_core(), batch->num_core);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalEquivalenceTest,
    ::testing::Values(std::make_tuple(0.8, 4, 11u),
                      std::make_tuple(1.5, 8, 12u),
                      std::make_tuple(3.0, 2, 13u),
                      std::make_tuple(0.5, 15, 14u)),
    [](const auto& info) {
      return "case" + std::to_string(info.index);
    });

TEST(IncrementalTest, AddBatchEqualsPointwiseAdds) {
  const auto data = datasets::Blobs(800, 0.02, 21);
  auto a = IncrementalDetector::Create(2, MakeParams(0.7, 5));
  auto b = IncrementalDetector::Create(2, MakeParams(0.7, 5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->AddBatch(data.points).ok());
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(b->Add(data.points[i]).ok());
  }
  EXPECT_EQ(a->kinds(), b->kinds());
}

TEST(IncrementalTest, InsertionOrderDoesNotMatter) {
  Rng rng(31);
  const PointSet stream = testing::ClusteredPoints(&rng, 300, 2, 2, 0.3);
  const Params params = MakeParams(1.2, 6);
  auto forward = IncrementalDetector::Create(2, params);
  auto backward = IncrementalDetector::Create(2, params);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(forward->Add(stream[i]).ok());
    ASSERT_TRUE(backward->Add(stream[stream.size() - 1 - i]).ok());
  }
  // Same multiset of points -> same number of outliers/core points (the
  // index labels differ because the order differs).
  EXPECT_EQ(forward->Outliers().size(), backward->Outliers().size());
  EXPECT_EQ(forward->num_core(), backward->num_core());
}

TEST(IncrementalTest, RemoveRejectsUnknownAndDoubleRemoves) {
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 2));
  ASSERT_TRUE(det.ok());
  EXPECT_FALSE(det->Remove(0).ok());  // never inserted
  const double p[] = {0.0};
  ASSERT_TRUE(det->Add({p, 1}).ok());
  ASSERT_TRUE(det->Remove(0).ok());
  const Status again = det->Remove(0);
  EXPECT_EQ(again.code(), StatusCode::kNotFound);
}

TEST(IncrementalTest, RemoveUpdatesLivenessNotEpoch) {
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 3));
  ASSERT_TRUE(det.ok());
  for (int i = 0; i < 4; ++i) {
    const double p[] = {static_cast<double>(i) * 10.0};  // isolated outliers
    ASSERT_TRUE(det->Add({p, 1}).ok());
  }
  ASSERT_TRUE(det->Remove(2).ok());
  EXPECT_EQ(det->epoch(), 4u);  // indices never rewind
  EXPECT_EQ(det->live_points(), 3u);
  EXPECT_FALSE(det->IsAlive(2));
  EXPECT_TRUE(det->IsAlive(1));
  // Removed points drop out of the outlier list but keep their last label.
  EXPECT_EQ(det->Outliers(), (std::vector<uint32_t>{0, 1, 3}));
  auto snap = det->SnapshotNow();
  EXPECT_EQ(snap->live_points(), 3u);
  EXPECT_FALSE(snap->IsAlive(2));
  EXPECT_EQ(snap->Outliers(), (std::vector<uint32_t>{0, 1, 3}));
}

// Layout (1D, eps = 1, minPts = 6): four copies of A at 0.0, one helper at
// -0.5, one border point d at 0.95. Each A reaches all six points (count 6,
// core); the helper (count 5) and d (count 5) are border, covered only by
// the A cores.
void BuildCoveredCluster(IncrementalDetector* det) {
  const double a[] = {0.0};
  const double helper[] = {-0.5};
  const double d[] = {0.95};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(det->Add({a, 1}).ok());  // ids 0..3
  }
  ASSERT_TRUE(det->Add({helper, 1}).ok());  // id 4
  ASSERT_TRUE(det->Add({d, 1}).ok());       // id 5
  ASSERT_EQ(det->num_core(), 4u);
  ASSERT_EQ(det->KindOf(4), PointKind::kBorder);
  ASSERT_EQ(det->KindOf(5), PointKind::kBorder);
}

TEST(IncrementalTest, RemoveCoreDemotesToNonCoreAndUncoversBorders) {
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 6));
  ASSERT_TRUE(det.ok());
  BuildCoveredCluster(&*det);
  // Removing one A drops every remaining count below minPts: the three
  // surviving A copies demote core -> non-core, and with no cores left the
  // whole live set falls to outlier.
  ASSERT_TRUE(det->Remove(0).ok());
  EXPECT_EQ(det->num_core(), 0u);
  EXPECT_EQ(det->Outliers(), (std::vector<uint32_t>{1, 2, 3, 4, 5}));
}

TEST(IncrementalTest, RemoveBorderCanDemoteCoresItSupported) {
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 6));
  ASSERT_TRUE(det.ok());
  BuildCoveredCluster(&*det);
  // d is only a border point, but its neighbor count is what keeps the A
  // copies on the minPts threshold: removing it demotes all four cores and
  // the helper falls border -> outlier with them.
  ASSERT_TRUE(det->Remove(5).ok());
  EXPECT_EQ(det->num_core(), 0u);
  EXPECT_EQ(det->Outliers(), (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(IncrementalTest, RemoveThenReinsertRebuildsTheCluster) {
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 6));
  ASSERT_TRUE(det.ok());
  BuildCoveredCluster(&*det);
  ASSERT_TRUE(det->Remove(1).ok());
  ASSERT_EQ(det->num_core(), 0u);
  // A new copy of A restores every count; labels recover exactly.
  const double a[] = {0.0};
  ASSERT_TRUE(det->Add({a, 1}).ok());  // id 6
  EXPECT_EQ(det->num_core(), 4u);
  EXPECT_EQ(det->KindOf(4), PointKind::kBorder);
  EXPECT_EQ(det->KindOf(5), PointKind::kBorder);
  EXPECT_TRUE(det->Outliers().empty());
}

TEST(IncrementalTest, DuplicateFlood) {
  auto det = IncrementalDetector::Create(3, MakeParams(0.5, 10));
  ASSERT_TRUE(det.ok());
  const double p[] = {1.0, 2.0, 3.0};
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(det->Add({p, 3}).ok());
  }
  EXPECT_EQ(det->num_core(), 25u);
  EXPECT_TRUE(det->Outliers().empty());
  EXPECT_EQ(det->num_cells(), 1u);
}

}  // namespace
}  // namespace dbscout::core

#include "core/incremental.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "datasets/synthetic.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

Params MakeParams(double eps, int min_pts) {
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  return params;
}

TEST(IncrementalTest, RejectsInvalidConfig) {
  EXPECT_FALSE(IncrementalDetector::Create(0, MakeParams(1.0, 5)).ok());
  EXPECT_FALSE(IncrementalDetector::Create(2, MakeParams(0.0, 5)).ok());
  EXPECT_FALSE(IncrementalDetector::Create(2, MakeParams(1.0, 0)).ok());
  EXPECT_FALSE(
      IncrementalDetector::Create(kMaxDims + 1, MakeParams(1.0, 5)).ok());
}

TEST(IncrementalTest, RejectsBadPoints) {
  auto det = IncrementalDetector::Create(2, MakeParams(1.0, 5));
  ASSERT_TRUE(det.ok());
  const double wrong_dims[] = {1.0};
  EXPECT_FALSE(det->Add({wrong_dims, 1}).ok());
  const double nan_point[] = {1.0, std::nan("")};
  EXPECT_FALSE(det->Add({nan_point, 2}).ok());
}

TEST(IncrementalTest, SinglePointLifecycle) {
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 2));
  ASSERT_TRUE(det.ok());
  const double p0[] = {0.0};
  auto idx = det->Add({p0, 1});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0u);
  EXPECT_EQ(det->KindOf(0), PointKind::kOutlier);
  // A second point within eps promotes both to core (count 2 >= minPts 2).
  const double p1[] = {0.5};
  ASSERT_TRUE(det->Add({p1, 1}).ok());
  EXPECT_EQ(det->KindOf(0), PointKind::kCore);
  EXPECT_EQ(det->KindOf(1), PointKind::kCore);
  EXPECT_TRUE(det->Outliers().empty());
}

TEST(IncrementalTest, OutlierRescuedByLaterInsertions) {
  // A lone point is an outlier until enough mass arrives nearby to form a
  // dense region that covers it.
  auto det = IncrementalDetector::Create(1, MakeParams(1.0, 4));
  ASSERT_TRUE(det.ok());
  const double lone[] = {0.9};
  ASSERT_TRUE(det->Add({lone, 1}).ok());
  EXPECT_EQ(det->KindOf(0), PointKind::kOutlier);
  for (int i = 0; i < 4; ++i) {
    const double p[] = {0.0};
    ASSERT_TRUE(det->Add({p, 1}).ok());
  }
  // The stack of four at 0.0 plus the lone point at 0.9: stack counts are
  // 5 >= 4 -> core; the lone point (count 5, also >= 4) becomes core too.
  EXPECT_EQ(det->KindOf(0), PointKind::kCore);
}

class IncrementalEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, int, uint64_t>> {};

TEST_P(IncrementalEquivalenceTest, MatchesBatchDetectionAtEveryCheckpoint) {
  const auto [eps, min_pts, seed] = GetParam();
  Rng rng(seed);
  const PointSet stream = testing::ClusteredPoints(&rng, 600, 2, 3, 0.25);
  auto det = IncrementalDetector::Create(2, MakeParams(eps, min_pts));
  ASSERT_TRUE(det.ok());
  const Params batch_params = MakeParams(eps, min_pts);
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(det->Add(stream[i]).ok());
    // Checkpoint at several prefixes, including awkward ones.
    if (i == 0 || i == 7 || i == 99 || i == 350 || i + 1 == stream.size()) {
      PointSet prefix(2);
      for (size_t j = 0; j <= i; ++j) {
        prefix.Add(stream[j]);
      }
      auto batch = DetectSequential(prefix, batch_params);
      ASSERT_TRUE(batch.ok());
      EXPECT_EQ(det->kinds(), batch->kinds) << "prefix " << i + 1;
      EXPECT_EQ(det->Outliers(), batch->outliers);
      EXPECT_EQ(det->num_core(), batch->num_core);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalEquivalenceTest,
    ::testing::Values(std::make_tuple(0.8, 4, 11u),
                      std::make_tuple(1.5, 8, 12u),
                      std::make_tuple(3.0, 2, 13u),
                      std::make_tuple(0.5, 15, 14u)),
    [](const auto& info) {
      return "case" + std::to_string(info.index);
    });

TEST(IncrementalTest, AddBatchEqualsPointwiseAdds) {
  const auto data = datasets::Blobs(800, 0.02, 21);
  auto a = IncrementalDetector::Create(2, MakeParams(0.7, 5));
  auto b = IncrementalDetector::Create(2, MakeParams(0.7, 5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->AddBatch(data.points).ok());
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(b->Add(data.points[i]).ok());
  }
  EXPECT_EQ(a->kinds(), b->kinds());
}

TEST(IncrementalTest, InsertionOrderDoesNotMatter) {
  Rng rng(31);
  const PointSet stream = testing::ClusteredPoints(&rng, 300, 2, 2, 0.3);
  const Params params = MakeParams(1.2, 6);
  auto forward = IncrementalDetector::Create(2, params);
  auto backward = IncrementalDetector::Create(2, params);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(forward->Add(stream[i]).ok());
    ASSERT_TRUE(backward->Add(stream[stream.size() - 1 - i]).ok());
  }
  // Same multiset of points -> same number of outliers/core points (the
  // index labels differ because the order differs).
  EXPECT_EQ(forward->Outliers().size(), backward->Outliers().size());
  EXPECT_EQ(forward->num_core(), backward->num_core());
}

TEST(IncrementalTest, DuplicateFlood) {
  auto det = IncrementalDetector::Create(3, MakeParams(0.5, 10));
  ASSERT_TRUE(det.ok());
  const double p[] = {1.0, 2.0, 3.0};
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(det->Add({p, 3}).ok());
  }
  EXPECT_EQ(det->num_core(), 25u);
  EXPECT_TRUE(det->Outliers().empty());
  EXPECT_EQ(det->num_cells(), 1u);
}

}  // namespace
}  // namespace dbscout::core

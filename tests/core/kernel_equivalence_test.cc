// Engine-level kernel equivalence: Detection output must be bit-identical
// whether the distance kernels are forced to the scalar reference or left
// to the runtime CPU dispatch (SSE2/AVX2), for every engine and for score
// mode. This is the guarantee that lets the SIMD path replace the scalar
// hot loops without perturbing the paper's exact outlier semantics.
#include <vector>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "simd/distance_kernel.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

/// Restores the force-scalar flag on scope exit so test order can't leak.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(bool force_scalar)
      : saved_(simd::ScalarKernelsForced()) {
    simd::ForceScalarKernels(force_scalar);
  }
  ~ScopedKernelMode() { simd::ForceScalarKernels(saved_); }

 private:
  bool saved_;
};

struct EngineRun {
  Detection sequential;
  Detection shared;
  Detection parallel;
};

EngineRun RunAllEngines(const PointSet& ps, const Params& params) {
  EngineRun run;
  auto seq = DetectSequential(ps, params);
  EXPECT_TRUE(seq.ok());
  run.sequential = std::move(*seq);

  ThreadPool pool(3);
  auto sh = DetectSharedMemory(ps, params, &pool);
  EXPECT_TRUE(sh.ok());
  run.shared = std::move(*sh);

  if (!params.compute_scores) {
    dataflow::ExecutionContext ctx(2, 6);
    Params pp = params;
    pp.engine = Engine::kParallel;
    pp.join = JoinStrategy::kGrouped;
    auto par = DetectParallel(ps, pp, &ctx);
    EXPECT_TRUE(par.ok());
    run.parallel = std::move(*par);
  }
  return run;
}

void ExpectIdentical(const Detection& a, const Detection& b,
                     const char* label) {
  EXPECT_EQ(a.outliers, b.outliers) << label;
  EXPECT_EQ(a.kinds, b.kinds) << label;
  EXPECT_EQ(a.num_core, b.num_core) << label;
  EXPECT_EQ(a.num_border, b.num_border) << label;
  // Bit-identical scores (vector<double> operator== is exact).
  EXPECT_EQ(a.core_distance, b.core_distance) << label;
}

class KernelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(KernelEquivalenceTest, ScalarAndDispatchedDetectionsMatch) {
  const auto [eps, min_pts] = GetParam();
  Rng rng(4242);
  const PointSet ps = testing::ClusteredPoints(&rng, 1500, 2, 5, 0.3);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;

  EngineRun scalar_run = [&] {
    ScopedKernelMode mode(/*force_scalar=*/true);
    return RunAllEngines(ps, params);
  }();
  EngineRun simd_run = [&] {
    ScopedKernelMode mode(/*force_scalar=*/false);
    return RunAllEngines(ps, params);
  }();

  ExpectIdentical(scalar_run.sequential, simd_run.sequential, "sequential");
  ExpectIdentical(scalar_run.shared, simd_run.shared, "shared");
  ExpectIdentical(scalar_run.parallel, simd_run.parallel, "parallel");
  // And across engines within each mode (the sequential engine stays the
  // oracle regardless of kernel selection).
  ExpectIdentical(scalar_run.sequential, scalar_run.shared, "scalar x-eng");
  ExpectIdentical(simd_run.sequential, simd_run.shared, "simd x-eng");
  EXPECT_EQ(simd_run.sequential.outliers, simd_run.parallel.outliers);
}

TEST_P(KernelEquivalenceTest, ScoreModeIsBitIdenticalAcrossKernels) {
  const auto [eps, min_pts] = GetParam();
  Rng rng(777);
  const PointSet ps = testing::ClusteredPoints(&rng, 900, 3, 4, 0.35);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  params.compute_scores = true;

  EngineRun scalar_run = [&] {
    ScopedKernelMode mode(/*force_scalar=*/true);
    return RunAllEngines(ps, params);
  }();
  EngineRun simd_run = [&] {
    ScopedKernelMode mode(/*force_scalar=*/false);
    return RunAllEngines(ps, params);
  }();

  ExpectIdentical(scalar_run.sequential, simd_run.sequential, "sequential");
  ExpectIdentical(scalar_run.shared, simd_run.shared, "shared");
  ASSERT_EQ(simd_run.sequential.core_distance.size(), ps.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelEquivalenceTest,
    ::testing::Combine(::testing::Values(0.05, 0.15, 0.4),
                       ::testing::Values(2, 5, 20)));

TEST(KernelEquivalenceBoundaryTest, LatticePointsOnCellEdges) {
  // Lattice coordinates land exactly on cell boundaries and produce many
  // equal distances — the worst case for rounding-sensitive comparisons.
  const PointSet ps = testing::LatticePoints(12, 2, 0.5);
  Params params;
  params.eps = 1.0;
  params.min_pts = 5;

  Detection scalar_det = [&] {
    ScopedKernelMode mode(true);
    auto r = DetectSequential(ps, params);
    EXPECT_TRUE(r.ok());
    return std::move(*r);
  }();
  Detection simd_det = [&] {
    ScopedKernelMode mode(false);
    auto r = DetectSequential(ps, params);
    EXPECT_TRUE(r.ok());
    return std::move(*r);
  }();
  ExpectIdentical(scalar_det, simd_det, "lattice");
  EXPECT_EQ(simd_det.kinds, testing::BruteForceKinds(ps, 1.0, 5));
}

}  // namespace
}  // namespace dbscout::core

// Encodes the walk-through example of the paper (SS III, Figs. 2-9): a 2D toy
// dataset analyzed with eps = sqrt(2) and minPts = 5. The dataset below is
// constructed to satisfy every property the paper states about its example:
//   - cell C1 = (0,0) is dense, so all of its points are core (Lemma 1);
//   - cell C2 = (1,-1) holds p1 = (1.1,-0.3) and p2 = (1.9,-0.9): p1 turns
//     out to be core, p2 does not (Figs. 4-5);
//   - cell C3 = (0,-2) holds p3 = (0.7,-1.5) and p4 = (0.3,-1.8): p3 has a
//     core point within eps (not an outlier), p4 does not (Figs. 7-8);
//   - the final outlier set is exactly {p4} (Fig. 9).
#include <cmath>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "grid/grid.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

constexpr double kEps = 1.41421356237309504880;  // sqrt(2)
constexpr int kMinPts = 5;

// Indices of the named points in the toy set.
constexpr uint32_t kP1 = 5;
constexpr uint32_t kP2 = 6;
constexpr uint32_t kP3 = 7;
constexpr uint32_t kP4 = 8;

PointSet PaperExample() {
  PointSet ps(2);
  // Five points in cell (0,0): the dense cell of Fig. 3.
  ps.Add({0.3, 0.3});
  ps.Add({0.5, 0.5});
  ps.Add({0.4, 0.6});
  ps.Add({0.6, 0.4});
  ps.Add({0.5, 0.3});
  // Cell (1,-1): the two points discussed in Figs. 4-5.
  ps.Add({1.1, -0.3});  // p1
  ps.Add({1.9, -0.9});  // p2
  // Cell (0,-2): the two points discussed in Figs. 7-8.
  ps.Add({0.7, -1.5});  // p3
  ps.Add({0.3, -1.8});  // p4
  return ps;
}

TEST(PaperExampleTest, GridAssignmentMatchesFig3) {
  const PointSet ps = PaperExample();
  auto g = grid::Grid::Build(ps, kEps);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->side(), 1.0, 1e-12);  // eps/sqrt(2) = 1
  EXPECT_EQ(g->num_cells(), 3u);

  const auto c1 = g->CellOf(ps[0]);
  EXPECT_EQ(c1[0], 0);
  EXPECT_EQ(c1[1], 0);
  const auto c2 = g->CellOf(ps[kP1]);
  EXPECT_EQ(c2[0], 1);
  EXPECT_EQ(c2[1], -1);
  EXPECT_EQ(g->CellOf(ps[kP2]), c2);
  const auto c3 = g->CellOf(ps[kP3]);
  EXPECT_EQ(c3[0], 0);
  EXPECT_EQ(c3[1], -2);
  EXPECT_EQ(g->CellOf(ps[kP4]), c3);
}

TEST(PaperExampleTest, DenseCellPointsAreCore) {
  const PointSet ps = PaperExample();
  Params params;
  params.eps = kEps;
  params.min_pts = kMinPts;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_dense_cells, 1u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r->kinds[i], PointKind::kCore) << "dense-cell point " << i;
  }
}

TEST(PaperExampleTest, P1IsCoreAndP2IsNot) {
  const PointSet ps = PaperExample();
  Params params;
  params.eps = kEps;
  params.min_pts = kMinPts;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kinds[kP1], PointKind::kCore);
  EXPECT_NE(r->kinds[kP2], PointKind::kCore);
  // p2 sits in a core cell (p1 is core there), so by Lemma 2 it cannot be
  // an outlier.
  EXPECT_EQ(r->kinds[kP2], PointKind::kBorder);
}

TEST(PaperExampleTest, P3IsCoveredAndP4IsTheOnlyOutlier) {
  const PointSet ps = PaperExample();
  Params params;
  params.eps = kEps;
  params.min_pts = kMinPts;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kinds[kP3], PointKind::kBorder);
  EXPECT_EQ(r->kinds[kP4], PointKind::kOutlier);
  EXPECT_EQ(r->outliers, (std::vector<uint32_t>{kP4}));
}

TEST(PaperExampleTest, NeighborCountsBehindTheFigures) {
  // Sanity-check the raw epsilon-neighborhood counts (point itself
  // included, Definition 2) that drive the classifications above.
  const PointSet ps = PaperExample();
  const double eps2 = kEps * kEps;
  auto count_neighbors = [&](uint32_t p) {
    int count = 0;
    for (size_t q = 0; q < ps.size(); ++q) {
      count += ps.SquaredDistance(p, q) <= eps2;
    }
    return count;
  };
  EXPECT_GE(count_neighbors(kP1), kMinPts);  // p1: core
  EXPECT_LT(count_neighbors(kP2), kMinPts);  // p2: only p1 and p3 in reach
  EXPECT_LT(count_neighbors(kP3), kMinPts);
  EXPECT_LT(count_neighbors(kP4), kMinPts);
  // p4's epsilon-neighborhood contains no core point: its only neighbor
  // besides itself is p3.
  EXPECT_EQ(count_neighbors(kP4), 2);
}

TEST(PaperExampleTest, MatchesBruteForceOracle) {
  const PointSet ps = PaperExample();
  Params params;
  params.eps = kEps;
  params.min_pts = kMinPts;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kinds, testing::BruteForceKinds(ps, kEps, kMinPts));
}

}  // namespace
}  // namespace dbscout::core

#include <cmath>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  dataflow::ExecutionContext ctx_{/*num_threads=*/4,
                                  /*default_partitions=*/8};
};

Params MakeParams(double eps, int min_pts, JoinStrategy join,
                  size_t partitions = 0) {
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  params.engine = Engine::kParallel;
  params.join = join;
  params.num_partitions = partitions;
  return params;
}

TEST_F(ParallelTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  auto bad = MakeParams(-1.0, 5, JoinStrategy::kGrouped);
  EXPECT_FALSE(DetectParallel(ps, bad, &ctx_).ok());
}

TEST_F(ParallelTest, RejectsNonFinitePoints) {
  PointSet ps(2);
  ps.Add({0.0, std::numeric_limits<double>::quiet_NaN()});
  auto params = MakeParams(1.0, 5, JoinStrategy::kGrouped);
  EXPECT_FALSE(DetectParallel(ps, params, &ctx_).ok());
}

TEST_F(ParallelTest, EmptyInput) {
  PointSet ps(2);
  auto params = MakeParams(1.0, 5, JoinStrategy::kGrouped);
  auto r = DetectParallel(ps, params, &ctx_);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->outliers.empty());
}

TEST_F(ParallelTest, AllStrategiesMatchSequentialOnClusteredData) {
  Rng rng(101);
  const PointSet ps = testing::ClusteredPoints(&rng, 800, 2, 5, 0.2);
  Params seq;
  seq.eps = 1.5;
  seq.min_pts = 10;
  auto expected = DetectSequential(ps, seq);
  ASSERT_TRUE(expected.ok());
  for (JoinStrategy join : {JoinStrategy::kPlain, JoinStrategy::kBroadcast,
                            JoinStrategy::kGrouped}) {
    auto params = MakeParams(seq.eps, seq.min_pts, join);
    auto r = DetectParallel(ps, params, &ctx_);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->kinds, expected->kinds)
        << "strategy=" << JoinStrategyName(join);
    EXPECT_EQ(r->outliers, expected->outliers);
    EXPECT_EQ(r->num_core, expected->num_core);
    EXPECT_EQ(r->num_cells, expected->num_cells);
    EXPECT_EQ(r->num_dense_cells, expected->num_dense_cells);
    EXPECT_EQ(r->num_core_cells, expected->num_core_cells);
  }
}

TEST_F(ParallelTest, ResultIndependentOfPartitionCount) {
  Rng rng(77);
  const PointSet ps = testing::ClusteredPoints(&rng, 500, 3, 4, 0.25);
  Params seq;
  seq.eps = 2.0;
  seq.min_pts = 8;
  auto expected = DetectSequential(ps, seq);
  ASSERT_TRUE(expected.ok());
  for (size_t partitions : {1u, 2u, 7u, 32u}) {
    auto params =
        MakeParams(seq.eps, seq.min_pts, JoinStrategy::kGrouped, partitions);
    auto r = DetectParallel(ps, params, &ctx_);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->outliers, expected->outliers)
        << "partitions=" << partitions;
    EXPECT_EQ(r->kinds, expected->kinds);
  }
}

TEST_F(ParallelTest, RecordsPhaseAndShuffleStats) {
  Rng rng(3);
  const PointSet ps = testing::ClusteredPoints(&rng, 300, 2, 3, 0.3);
  auto params = MakeParams(1.0, 6, JoinStrategy::kGrouped);
  ctx_.ResetMetrics();
  auto r = DetectParallel(ps, params, &ctx_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->phases.size(), 5u);
  EXPECT_EQ(r->phases[0].name, "grid");
  EXPECT_EQ(r->phases[2].name, "core_points");
  EXPECT_EQ(r->phases[4].name, "outliers");
  EXPECT_GT(r->shuffled_records, 0u);
  EXPECT_FALSE(ctx_.stages().empty());
}

TEST_F(ParallelTest, FacadeDispatchesBothEngines) {
  Rng rng(9);
  const PointSet ps = testing::ClusteredPoints(&rng, 200, 2, 2, 0.3);
  Params params;
  params.eps = 1.0;
  params.min_pts = 5;
  params.engine = Engine::kSequential;
  auto seq = Detect(ps, params);
  ASSERT_TRUE(seq.ok());
  params.engine = Engine::kParallel;
  auto par = Detect(ps, params);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq->outliers, par->outliers);
  EXPECT_EQ(seq->kinds, par->kinds);
}

TEST_F(ParallelTest, MatchesBruteForceDirectly) {
  Rng rng(55);
  const PointSet ps = testing::UniformPoints(&rng, 250, 2, -5, 5);
  const double eps = 1.1;
  const int min_pts = 4;
  for (JoinStrategy join : {JoinStrategy::kPlain, JoinStrategy::kBroadcast,
                            JoinStrategy::kGrouped}) {
    auto r = DetectParallel(ps, MakeParams(eps, min_pts, join), &ctx_);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->kinds, testing::BruteForceKinds(ps, eps, min_pts))
        << "strategy=" << JoinStrategyName(join);
  }
}

}  // namespace
}  // namespace dbscout::core

#include "core/params.h"

#include <string>

#include <gtest/gtest.h>

namespace dbscout::core {
namespace {

TEST(ParamsTest, DefaultsAreValid) {
  Params params;
  EXPECT_TRUE(params.Validate().ok());
  EXPECT_EQ(params.engine, Engine::kSequential);
  EXPECT_EQ(params.join, JoinStrategy::kGrouped);
  EXPECT_FALSE(params.compute_scores);
}

TEST(ParamsTest, ValidationCatchesBadValues) {
  Params params;
  params.eps = 0.0;
  EXPECT_EQ(params.Validate().code(), StatusCode::kInvalidArgument);
  params.eps = -3.0;
  EXPECT_FALSE(params.Validate().ok());
  params.eps = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(params.Validate().ok());
  params.min_pts = -5;
  EXPECT_FALSE(params.Validate().ok());
  params.min_pts = 1;
  EXPECT_TRUE(params.Validate().ok());
}

TEST(ParamsTest, NamesAreStable) {
  // The names appear in CLI output and benchmark logs; pin them.
  EXPECT_EQ(std::string(EngineName(Engine::kSequential)), "sequential");
  EXPECT_EQ(std::string(EngineName(Engine::kParallel)), "parallel");
  EXPECT_EQ(std::string(EngineName(Engine::kSharedMemory)),
            "shared-memory");
  EXPECT_EQ(std::string(JoinStrategyName(JoinStrategy::kPlain)), "plain");
  EXPECT_EQ(std::string(JoinStrategyName(JoinStrategy::kBroadcast)),
            "broadcast");
  EXPECT_EQ(std::string(JoinStrategyName(JoinStrategy::kGrouped)),
            "grouped");
}

}  // namespace
}  // namespace dbscout::core

// Unit tests for the shared phase-kernel library: the single home of the
// Lemma 1/2 logic that every engine drives. These pin the cell-granular
// contracts (what each primitive reads and writes) independently of any
// engine's orchestration.
#include "core/phases/phase_kernels.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/phases/phase_recorder.h"
#include "grid/grid.h"
#include "testutil.h"

namespace dbscout::core::phases {
namespace {

// A 2D set with one dense cell, one sparse-core cell, and one isolated
// point, under eps = sqrt(2) (cell side 1.0) and minPts = 4:
//  - cell (0,0): 5 points -> dense, all core (Lemma 1);
//  - cell (1,1): 2 points adjacent to the dense mass -> core via neighbors;
//  - cell (9,9): 1 far point -> outlier via the O_ncn shortcut.
PointSet Sample() {
  PointSet ps(2);
  ps.Add({0.2, 0.2});
  ps.Add({0.4, 0.4});
  ps.Add({0.5, 0.5});
  ps.Add({0.6, 0.6});
  ps.Add({0.8, 0.8});
  ps.Add({1.2, 1.2});
  ps.Add({1.4, 1.4});
  ps.Add({9.5, 9.5});
  return ps;
}

constexpr double kEps2 = 2.0;
constexpr uint32_t kMinPts = 4;

struct Built {
  grid::Grid g;
  const grid::NeighborStencil* stencil;
  BoundKernels kernels;
};

Built Build(const PointSet& ps) {
  auto g = grid::Grid::Build(ps, std::sqrt(2.0));
  EXPECT_TRUE(g.ok());
  auto stencil = grid::GetNeighborStencil(ps.dims());
  EXPECT_TRUE(stencil.ok());
  return {std::move(*g), *stencil, BindKernels(ps.dims())};
}

TEST(PhasesTest, DensityPredicates) {
  EXPECT_FALSE(IsDense(0, 1));
  EXPECT_TRUE(IsDense(1, 1));
  EXPECT_FALSE(IsDense(4, 5));
  EXPECT_TRUE(IsDense(5, 5));
  EXPECT_TRUE(IsDense(6, 5));
  // The streaming variant fires exactly once, on the crossing increment.
  EXPECT_FALSE(CrossesDensityThreshold(4, 5));
  EXPECT_TRUE(CrossesDensityThreshold(5, 5));
  EXPECT_FALSE(CrossesDensityThreshold(6, 5));
}

TEST(PhasesTest, CanonicalPhaseNames) {
  EXPECT_EQ(kPhaseGrid, "grid");
  EXPECT_EQ(kPhaseDenseCellMap, "dense_cell_map");
  EXPECT_EQ(kPhaseCorePoints, "core_points");
  EXPECT_EQ(kPhaseCoreCellMap, "core_cell_map");
  EXPECT_EQ(kPhaseOutliers, "outliers");
}

TEST(PhasesTest, ClassifyDenseCellsCountsAndFlags) {
  const PointSet ps = Sample();
  Built b = Build(ps);
  std::vector<uint8_t> cell_dense(b.g.num_cells(), 0xFF);
  const uint32_t num_dense =
      ClassifyDenseCells(b.g, kMinPts, cell_dense.data());
  EXPECT_EQ(num_dense, 1u);
  uint32_t set = 0;
  for (uint32_t c = 0; c < b.g.num_cells(); ++c) {
    EXPECT_TRUE(cell_dense[c] == 0 || cell_dense[c] == 1);  // fully rewritten
    set += cell_dense[c];
    EXPECT_EQ(cell_dense[c] == 1, IsDense(b.g.CellSize(c), kMinPts));
  }
  EXPECT_EQ(set, num_dense);
}

TEST(PhasesTest, CoreScanMatchesBruteForce) {
  const PointSet ps = Sample();
  Built b = Build(ps);
  std::vector<uint8_t> cell_dense(b.g.num_cells(), 0);
  ClassifyDenseCells(b.g, kMinPts, cell_dense.data());
  std::vector<uint8_t> is_core(ps.size(), 0);
  std::vector<uint32_t> scratch;
  uint64_t distances = 0;
  for (uint32_t c = 0; c < b.g.num_cells(); ++c) {
    distances += CoreScanCell(b.g, *b.stencil, b.kernels, kEps2, kMinPts, c,
                              cell_dense.data(), is_core.data(), &scratch);
  }
  // Dense cells contribute no distance work (Lemma 1 short-circuit).
  EXPECT_GT(distances, 0u);
  const auto kinds = testing::BruteForceKinds(ps, std::sqrt(2.0), kMinPts);
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(is_core[i] == 1, kinds[i] == PointKind::kCore) << "point " << i;
  }
}

TEST(PhasesTest, SparseCoreCsrLayout) {
  const PointSet ps = Sample();
  Built b = Build(ps);
  std::vector<uint8_t> cell_dense(b.g.num_cells(), 0);
  ClassifyDenseCells(b.g, kMinPts, cell_dense.data());
  std::vector<uint8_t> is_core(ps.size(), 0);
  std::vector<uint32_t> scratch;
  for (uint32_t c = 0; c < b.g.num_cells(); ++c) {
    CoreScanCell(b.g, *b.stencil, b.kernels, kEps2, kMinPts, c,
                 cell_dense.data(), is_core.data(), &scratch);
  }
  std::vector<uint8_t> cell_core(b.g.num_cells(), 0);
  SparseCoreCsr csr;
  const uint32_t num_core_cells = BuildSparseCoreCsr(
      b.g, cell_dense.data(), is_core.data(), cell_core.data(), &csr);
  EXPECT_EQ(num_core_cells, 2u);  // the dense cell and the sparse-core cell
  ASSERT_EQ(csr.begin.size(), b.g.num_cells() + 1);
  // Dense cells never hold CSR entries; sparse core cells hold exactly
  // their core points, with packed coordinates matching the point set.
  size_t total = 0;
  for (uint32_t c = 0; c < b.g.num_cells(); ++c) {
    const size_t count = csr.CellCount(c);
    if (cell_dense[c]) {
      EXPECT_EQ(count, 0u);
    }
    const double* block = csr.CellBlock(c, ps.dims());
    for (size_t j = 0; j < count; ++j) {
      const uint32_t p = csr.idx[csr.begin[c] + j];
      EXPECT_TRUE(is_core[p]);
      for (size_t k = 0; k < ps.dims(); ++k) {
        EXPECT_EQ(block[j * ps.dims() + k], ps[p][k]);
      }
    }
    total += count;
  }
  EXPECT_EQ(total, csr.idx.size());
  EXPECT_EQ(csr.coords.size(), csr.idx.size() * ps.dims());
  EXPECT_EQ(total, 2u);  // the two core points of cell (1,1)
}

TEST(PhasesTest, OutlierScanAppliesLemmaTwoAndOncn) {
  const PointSet ps = Sample();
  Built b = Build(ps);
  std::vector<uint8_t> cell_dense(b.g.num_cells(), 0);
  ClassifyDenseCells(b.g, kMinPts, cell_dense.data());
  std::vector<uint8_t> is_core(ps.size(), 0);
  std::vector<uint32_t> scratch;
  for (uint32_t c = 0; c < b.g.num_cells(); ++c) {
    CoreScanCell(b.g, *b.stencil, b.kernels, kEps2, kMinPts, c,
                 cell_dense.data(), is_core.data(), &scratch);
  }
  std::vector<uint8_t> cell_core(b.g.num_cells(), 0);
  SparseCoreCsr csr;
  BuildSparseCoreCsr(b.g, cell_dense.data(), is_core.data(), cell_core.data(),
                     &csr);
  std::vector<PointKind> kinds(ps.size(), PointKind::kBorder);
  uint64_t distances = 0;
  for (uint32_t c = 0; c < b.g.num_cells(); ++c) {
    distances += OutlierScanCell(b.g, *b.stencil, b.kernels, kEps2,
                                 /*scores=*/false, c, cell_dense.data(),
                                 cell_core.data(), is_core.data(), csr,
                                 kinds.data(), nullptr, &scratch);
  }
  // The isolated point resolves through O_ncn: no distances were needed,
  // because every cell is either core (skipped, Lemma 2) or has no core
  // neighbor at all.
  EXPECT_EQ(distances, 0u);
  const auto expected = testing::BruteForceKinds(ps, std::sqrt(2.0), kMinPts);
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(kinds[i] == PointKind::kOutlier,
              expected[i] == PointKind::kOutlier)
        << "point " << i;
  }
}

TEST(PhasesTest, OutlierScanScoreModeComputesDistances) {
  const PointSet ps = Sample();
  Built b = Build(ps);
  std::vector<uint8_t> cell_dense(b.g.num_cells(), 0);
  ClassifyDenseCells(b.g, kMinPts, cell_dense.data());
  std::vector<uint8_t> is_core(ps.size(), 0);
  std::vector<uint32_t> scratch;
  for (uint32_t c = 0; c < b.g.num_cells(); ++c) {
    CoreScanCell(b.g, *b.stencil, b.kernels, kEps2, kMinPts, c,
                 cell_dense.data(), is_core.data(), &scratch);
  }
  std::vector<uint8_t> cell_core(b.g.num_cells(), 0);
  SparseCoreCsr csr;
  BuildSparseCoreCsr(b.g, cell_dense.data(), is_core.data(), cell_core.data(),
                     &csr);
  std::vector<PointKind> kinds(ps.size(), PointKind::kBorder);
  std::vector<double> core_distance(ps.size(), 0.0);
  for (uint32_t c = 0; c < b.g.num_cells(); ++c) {
    OutlierScanCell(b.g, *b.stencil, b.kernels, kEps2, /*scores=*/true, c,
                    cell_dense.data(), cell_core.data(), is_core.data(), csr,
                    kinds.data(), core_distance.data(), &scratch);
  }
  for (size_t i = 0; i < ps.size(); ++i) {
    if (is_core[i]) {
      EXPECT_EQ(core_distance[i], 0.0) << "core point " << i;
      continue;
    }
    // Non-core: exact distance to the nearest core point when within eps
    // (any such point lies in a neighboring cell, so the kernel saw it);
    // beyond eps the kernel only guarantees a value > eps — O_ncn points
    // report inf without any distance work.
    double best = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < ps.size(); ++j) {
      if (is_core[j]) {
        best = std::min(best, PointSet::SquaredDistance(ps[i], ps[j]));
      }
    }
    if (best <= kEps2) {
      EXPECT_EQ(core_distance[i], std::sqrt(best)) << "point " << i;
    } else {
      EXPECT_GT(core_distance[i], std::sqrt(kEps2)) << "point " << i;
    }
  }
}

TEST(PhasesTest, RecorderAccumulatesInFirstCallOrder) {
  PhaseRecorder recorder;
  recorder.Accumulate(kPhaseGrid, 0.5, 0, 10);
  recorder.Accumulate(kPhaseCorePoints, 1.0, 100, 10);
  recorder.Accumulate(kPhaseGrid, 0.25, 0, 5);
  const auto& rows = recorder.phases();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, kPhaseGrid);
  EXPECT_DOUBLE_EQ(rows[0].seconds, 0.75);
  EXPECT_EQ(rows[0].records, 15u);
  EXPECT_EQ(rows[1].name, kPhaseCorePoints);
  EXPECT_EQ(rows[1].distance_computations, 100u);
}

TEST(PhasesTest, CanonicalEngineNames) {
  EXPECT_EQ(kEngineSequential, "sequential");
  EXPECT_EQ(kEngineSharedMemory, "shared_memory");
  EXPECT_EQ(kEngineParallel, "parallel");
  EXPECT_EQ(kEngineExternal, "external");
  EXPECT_EQ(kEngineIncremental, "incremental");
}

TEST(PhasesTest, AttachedRecorderPublishesMetricsAndSpans) {
  obs::Registry registry;
  obs::TraceCollector trace;
  PhaseRecorder recorder;
  recorder.AttachObservability(kEngineExternal, &registry, &trace);
  recorder.Accumulate(kPhaseGrid, 0.5, 10, 100);
  recorder.Accumulate(kPhaseGrid, 0.25, 5, 50);  // second stripe, same row
  // One merged row, but one span and one metric publication per call.
  ASSERT_EQ(recorder.phases().size(), 1u);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.Spans()[0].name, kPhaseGrid);
  EXPECT_EQ(trace.Spans()[0].cat, kEngineExternal);
  EXPECT_EQ(trace.Spans()[1].distance_computations, 5u);
  bool saw_hist = false;
  bool saw_counter = false;
  for (const auto& family : registry.Snapshot()) {
    if (family.name == "dbscout_phase_seconds") {
      ASSERT_EQ(family.series.size(), 1u);
      EXPECT_EQ(family.series[0].histogram.count, 2u);
      EXPECT_NEAR(family.series[0].histogram.sum, 0.75, 1e-6);
      saw_hist = true;
    }
    if (family.name == "dbscout_phase_distance_computations_total") {
      ASSERT_EQ(family.series.size(), 1u);
      EXPECT_EQ(family.series[0].counter, 15u);
      EXPECT_EQ(family.series[0].labels,
                (obs::Labels{{"engine", "external"}, {"phase", "grid"}}));
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_hist);
  EXPECT_TRUE(saw_counter);
}

TEST(PhasesTest, UnattachedRecorderPublishesNothing) {
  // No registry / trace attached: Record and Accumulate only build rows.
  PhaseRecorder recorder;
  recorder.Start();
  recorder.Record(kPhaseGrid, 1, 2);
  recorder.Accumulate(kPhaseOutliers, 0.1, 3, 4);
  EXPECT_EQ(recorder.phases().size(), 2u);
}

TEST(PhasesTest, ScopedPhaseRecordsOnDestruction) {
  PhaseRecorder recorder;
  {
    ScopedPhase phase(&recorder, kPhaseOutliers);
    phase.distances.fetch_add(7);
    phase.records.fetch_add(3);
    EXPECT_TRUE(recorder.phases().empty());
  }
  ASSERT_EQ(recorder.phases().size(), 1u);
  EXPECT_EQ(recorder.phases()[0].name, kPhaseOutliers);
  EXPECT_EQ(recorder.phases()[0].distance_computations, 7u);
  EXPECT_EQ(recorder.phases()[0].records, 3u);
}

}  // namespace
}  // namespace dbscout::core::phases

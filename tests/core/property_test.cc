// Property-based sweeps: for randomized datasets across dimensionalities,
// distributions, eps, and minPts, every DBSCOUT engine and join strategy
// must reproduce the brute-force O(n^2) oracle exactly, and structural
// invariants of the detection must hold.
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <deque>
#include <string>
#include <tuple>

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "core/incremental.h"
#include "data/io.h"
#include "external/external_detector.h"
#include "grid/grid.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

enum class Distribution { kUniform, kClustered, kLattice, kDuplicateHeavy };

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kClustered:
      return "clustered";
    case Distribution::kLattice:
      return "lattice";
    case Distribution::kDuplicateHeavy:
      return "duplicates";
  }
  return "?";
}

PointSet MakeDataset(Distribution distribution, size_t dims, uint64_t seed) {
  Rng rng(seed);
  switch (distribution) {
    case Distribution::kUniform:
      return testing::UniformPoints(&rng, 220, dims, -8.0, 8.0);
    case Distribution::kClustered:
      return testing::ClusteredPoints(&rng, 260, dims, 3, 0.2);
    case Distribution::kLattice: {
      // Points exactly on cell boundaries stress floor() handling.
      const size_t per_side = dims <= 2 ? 14 : (dims == 3 ? 6 : 4);
      return testing::LatticePoints(per_side, dims, 0.7);
    }
    case Distribution::kDuplicateHeavy: {
      PointSet base = testing::UniformPoints(&rng, 40, dims, -3.0, 3.0);
      PointSet out(dims);
      for (int rep = 0; rep < 5; ++rep) {
        out.Append(base);
      }
      return out;
    }
  }
  return PointSet(dims);
}

using Case = std::tuple<Distribution, size_t /*dims*/, double /*eps*/,
                        int /*min_pts*/>;

class DbscoutPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(DbscoutPropertyTest, SequentialMatchesBruteForce) {
  const auto [distribution, dims, eps, min_pts] = GetParam();
  const PointSet ps = MakeDataset(distribution, dims, 1234 + dims);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->kinds, testing::BruteForceKinds(ps, eps, min_pts));
}

TEST_P(DbscoutPropertyTest, ParallelStrategiesMatchSequential) {
  const auto [distribution, dims, eps, min_pts] = GetParam();
  const PointSet ps = MakeDataset(distribution, dims, 1234 + dims);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  auto expected = DetectSequential(ps, params);
  ASSERT_TRUE(expected.ok());
  dataflow::ExecutionContext ctx(2, 6);
  for (JoinStrategy join : {JoinStrategy::kPlain, JoinStrategy::kBroadcast,
                            JoinStrategy::kGrouped}) {
    Params pp = params;
    pp.engine = Engine::kParallel;
    pp.join = join;
    auto r = DetectParallel(ps, pp, &ctx);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->kinds, expected->kinds)
        << "strategy=" << JoinStrategyName(join);
  }
}

// Out-of-core and incremental engines swept through the same grid as the
// in-memory ones: identical outlier sets on every (distribution, dims,
// eps, minPts) combination, including duplicates and lattice boundary
// points. All engines now drive the same phase kernels, so a divergence
// here means an engine's orchestration (striping, insertion order) broke.
TEST_P(DbscoutPropertyTest, ExternalAndIncrementalMatchSequential) {
  const auto [distribution, dims, eps, min_pts] = GetParam();
  const PointSet ps = MakeDataset(distribution, dims, 1234 + dims);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  auto expected = DetectSequential(ps, params);
  ASSERT_TRUE(expected.ok());

  // External, forced multi-stripe (70 points per stripe target).
  {
    const std::string path = ::testing::TempDir() + "/prop_ext_" +
                             std::to_string(::getpid()) + ".dbsc";
    ASSERT_TRUE(SavePointsBinary(path, ps).ok());
    external::ExternalParams ext;
    ext.eps = eps;
    ext.min_pts = min_pts;
    ext.target_stripe_points = 70;
    ext.tmp_dir = ::testing::TempDir();
    auto r = external::DetectExternal(path, ext);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->outliers, expected->outliers) << "external";
    EXPECT_EQ(r->num_core, expected->num_core);
    EXPECT_EQ(r->num_border, expected->num_border);
    EXPECT_EQ(r->num_cells, expected->num_cells);
    EXPECT_EQ(r->num_dense_cells, expected->num_dense_cells);
    std::remove(path.c_str());
  }
  // Incremental, one insertion at a time.
  {
    auto det = IncrementalDetector::Create(ps.dims(), params);
    ASSERT_TRUE(det.ok());
    ASSERT_TRUE(det->AddBatch(ps).ok());
    EXPECT_EQ(det->Outliers(), expected->outliers) << "incremental";
    EXPECT_EQ(det->kinds(), expected->kinds);
  }
}

// The sequential and pooled drivers execute the same cell kernels, so
// every deterministic PhaseRecorder counter — names, order, records, and
// distance-computation counts — must agree exactly (only seconds may
// differ). Distance counts are schedule-independent because early exits
// happen at cell/batch granularity inside the kernels, never across cells.
TEST_P(DbscoutPropertyTest, PhaseCountersMatchAcrossInMemoryEngines) {
  const auto [distribution, dims, eps, min_pts] = GetParam();
  const PointSet ps = MakeDataset(distribution, dims, 1234 + dims);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  auto seq = DetectSequential(ps, params);
  ASSERT_TRUE(seq.ok());
  ThreadPool pool(3);
  auto shared = DetectSharedMemory(ps, params, &pool);
  ASSERT_TRUE(shared.ok());
  ASSERT_EQ(seq->phases.size(), 5u);
  ASSERT_EQ(shared->phases.size(), 5u);
  const char* kCanonical[] = {"grid", "dense_cell_map", "core_points",
                              "core_cell_map", "outliers"};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(seq->phases[i].name, kCanonical[i]);
    EXPECT_EQ(shared->phases[i].name, kCanonical[i]);
    EXPECT_EQ(seq->phases[i].records, shared->phases[i].records)
        << "phase " << kCanonical[i];
    EXPECT_EQ(seq->phases[i].distance_computations,
              shared->phases[i].distance_computations)
        << "phase " << kCanonical[i];
  }
}

TEST_P(DbscoutPropertyTest, StructuralInvariants) {
  const auto [distribution, dims, eps, min_pts] = GetParam();
  const PointSet ps = MakeDataset(distribution, dims, 1234 + dims);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());

  // Labels partition the dataset.
  EXPECT_EQ(r->num_core + r->num_border + r->outliers.size(), ps.size());

  // Dense cells are a subset of core cells, core cells of all cells.
  EXPECT_LE(r->num_dense_cells, r->num_core_cells);
  EXPECT_LE(r->num_core_cells, r->num_cells);

  // No outlier may lie within eps of a core point; every border point must.
  const double eps2 = eps * eps;
  for (size_t i = 0; i < ps.size(); ++i) {
    if (r->kinds[i] == PointKind::kCore) {
      continue;
    }
    bool near_core = false;
    for (size_t j = 0; j < ps.size(); ++j) {
      if (r->kinds[j] == PointKind::kCore &&
          ps.SquaredDistance(i, j) <= eps2) {
        near_core = true;
        break;
      }
    }
    if (r->kinds[i] == PointKind::kOutlier) {
      EXPECT_FALSE(near_core) << "outlier " << i << " near a core point";
    } else {
      EXPECT_TRUE(near_core) << "border " << i << " not near any core point";
    }
  }

  // Outlier list is sorted, unique, and consistent with kinds.
  EXPECT_TRUE(std::is_sorted(r->outliers.begin(), r->outliers.end()));
  for (size_t k = 1; k < r->outliers.size(); ++k) {
    EXPECT_NE(r->outliers[k - 1], r->outliers[k]);
  }
  for (uint32_t p : r->outliers) {
    EXPECT_EQ(r->kinds[p], PointKind::kOutlier);
  }
}

// Monotonicity: growing eps (or shrinking minPts) can only shrink the
// outlier set.
TEST_P(DbscoutPropertyTest, OutliersMonotoneInParameters) {
  const auto [distribution, dims, eps, min_pts] = GetParam();
  const PointSet ps = MakeDataset(distribution, dims, 1234 + dims);
  Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  auto base = DetectSequential(ps, params);
  ASSERT_TRUE(base.ok());

  Params wider = params;
  wider.eps = eps * 1.5;
  auto wide = DetectSequential(ps, wider);
  ASSERT_TRUE(wide.ok());
  EXPECT_LE(wide->outliers.size(), base->outliers.size());
  // Subset relation: every wide-eps outlier is also a base outlier.
  for (uint32_t p : wide->outliers) {
    EXPECT_EQ(base->kinds[p], PointKind::kOutlier);
  }

  if (min_pts > 1) {
    Params looser = params;
    looser.min_pts = min_pts - 1;
    auto loose = DetectSequential(ps, looser);
    ASSERT_TRUE(loose.ok());
    EXPECT_LE(loose->outliers.size(), base->outliers.size());
    for (uint32_t p : loose->outliers) {
      EXPECT_EQ(base->kinds[p], PointKind::kOutlier);
    }
  }
}

// The sharded parallel apply pipeline (home-cell grouping, slab-block
// shards over a real ThreadPool, three-wave scheduling, group-batched
// neighbor scans) must be invisible: after every randomized batch the
// detector state equals the sequential oracle on the full prefix. Batch
// sizes are drawn at random so passes cross the group-batching threshold
// in both directions.
TEST(ShardedApplyPropertyTest, RandomBatchesMatchOracleAtEveryEpoch) {
  for (const uint64_t seed : {101u, 202u}) {
    Rng rng(seed);
    const PointSet stream = testing::ClusteredPoints(&rng, 420, 2, 3, 0.25);
    Params params;
    params.eps = 0.9;
    params.min_pts = 5;
    auto det = IncrementalDetector::Create(2, params);
    ASSERT_TRUE(det.ok());
    ThreadPool pool(3);
    size_t pos = 0;
    bool saw_multi_shard = false;
    while (pos < stream.size()) {
      const size_t take = std::min<size_t>(1 + rng.NextBounded(96),
                                           stream.size() - pos);
      PointSet batch(2);
      for (size_t i = 0; i < take; ++i) {
        batch.Add(stream[pos + i]);
      }
      pos += take;
      ApplyStats stats;
      ASSERT_TRUE(det->AddBatchParallel(batch, &pool, &stats).ok());
      saw_multi_shard |= stats.shards > 1;
      PointSet prefix(2);
      for (size_t j = 0; j < pos; ++j) {
        prefix.Add(stream[j]);
      }
      auto oracle = DetectSequential(prefix, params);
      ASSERT_TRUE(oracle.ok());
      ASSERT_EQ(det->kinds(), oracle->kinds) << "epoch " << pos;
      ASSERT_EQ(det->Outliers(), oracle->outliers) << "epoch " << pos;
      ASSERT_EQ(det->num_core(), oracle->num_core) << "epoch " << pos;
    }
    // The point of the sweep is exercising the concurrent path; a stream
    // this size must shard (blocks >= 2) at least once.
    EXPECT_TRUE(saw_multi_shard) << "seed " << seed;
  }
}

// Sliding-window shape: sharded inserts interleaved with oldest-first
// removals (exactly what TTL expiry does). After every step the live
// window must label identically to a from-scratch sequential detection of
// just the live points.
TEST(ShardedApplyPropertyTest, WindowedRemovalsMatchOracleOnLiveWindow) {
  Rng rng(77);
  const PointSet stream = testing::ClusteredPoints(&rng, 360, 2, 3, 0.25);
  Params params;
  params.eps = 0.9;
  params.min_pts = 5;
  auto det = IncrementalDetector::Create(2, params);
  ASSERT_TRUE(det.ok());
  ThreadPool pool(3);
  std::deque<uint32_t> live;  // ids in insertion order (= ascending)
  size_t pos = 0;
  while (pos < stream.size()) {
    const size_t take = std::min<size_t>(1 + rng.NextBounded(64),
                                         stream.size() - pos);
    PointSet batch(2);
    for (size_t i = 0; i < take; ++i) {
      batch.Add(stream[pos + i]);
      live.push_back(static_cast<uint32_t>(pos + i));
    }
    pos += take;
    ASSERT_TRUE(det->AddBatchParallel(batch, &pool).ok());
    // Expire the oldest third of the window, batch-style.
    for (size_t drop = live.size() / 3; drop > 0; --drop) {
      ASSERT_TRUE(det->Remove(live.front()).ok());
      live.pop_front();
    }
    PointSet window(2);
    for (const uint32_t id : live) {
      window.Add(stream[id]);
    }
    auto oracle = DetectSequential(window, params);
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(det->live_points(), live.size());
    ASSERT_EQ(det->num_core(), oracle->num_core) << "epoch " << pos;
    std::vector<uint32_t> expected_outliers;
    for (size_t k = 0; k < live.size(); ++k) {
      ASSERT_EQ(det->KindOf(live[k]), oracle->kinds[k])
          << "epoch " << pos << " live id " << live[k];
      if (oracle->kinds[k] == PointKind::kOutlier) {
        expected_outliers.push_back(live[k]);
      }
    }
    ASSERT_EQ(det->Outliers(), expected_outliers) << "epoch " << pos;
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const auto [distribution, dims, eps, min_pts] = info.param;
  std::string eps_tag = std::to_string(eps);
  for (auto& c : eps_tag) {
    if (c == '.' || c == '-') {
      c = '_';
    }
  }
  return std::string(DistributionName(distribution)) + "_d" +
         std::to_string(dims) + "_eps" + eps_tag + "_m" +
         std::to_string(min_pts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbscoutPropertyTest,
    ::testing::Combine(
        ::testing::Values(Distribution::kUniform, Distribution::kClustered,
                          Distribution::kLattice,
                          Distribution::kDuplicateHeavy),
        ::testing::Values(size_t{1}, size_t{2}, size_t{3}, size_t{5}),
        ::testing::Values(0.7, 1.6),
        ::testing::Values(2, 6)),
    CaseName);

}  // namespace
}  // namespace dbscout::core

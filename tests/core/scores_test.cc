#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

TEST(ScoresTest, DisabledByDefault) {
  PointSet ps(1);
  ps.Add({0.0});
  Params params;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->core_distance.empty());
}

TEST(ScoresTest, CorePointsScoreZero) {
  PointSet ps(1);
  for (int i = 0; i < 6; ++i) {
    ps.Add({0.0});
  }
  Params params;
  params.eps = 1.0;
  params.min_pts = 5;
  params.compute_scores = true;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->core_distance.size(), ps.size());
  for (double d : r->core_distance) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

TEST(ScoresTest, BorderAndOutlierDistances) {
  // 7-point stack at 0 (core), bridge at 0.95 (core), tail at 1.9
  // (border, nearest core = bridge at 0.95), far point at 10 (outlier
  // with no core in the neighbor horizon -> +inf).
  PointSet ps(1);
  for (int i = 0; i < 7; ++i) {
    ps.Add({0.0});
  }
  ps.Add({0.95});
  ps.Add({1.9});
  ps.Add({10.0});
  Params params;
  params.eps = 1.0;
  params.min_pts = 8;
  params.compute_scores = true;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kinds[8], PointKind::kBorder);
  EXPECT_NEAR(r->core_distance[8], 0.95, 1e-12);
  EXPECT_EQ(r->kinds[9], PointKind::kOutlier);
  EXPECT_TRUE(std::isinf(r->core_distance[9]));
}

TEST(ScoresTest, ScoresConsistentWithLabels) {
  Rng rng(91);
  const PointSet ps = testing::ClusteredPoints(&rng, 800, 2, 4, 0.25);
  Params params;
  params.eps = 1.2;
  params.min_pts = 8;
  params.compute_scores = true;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->core_distance.size(), ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    switch (r->kinds[i]) {
      case PointKind::kCore:
        EXPECT_DOUBLE_EQ(r->core_distance[i], 0.0);
        break;
      case PointKind::kBorder:
        EXPECT_LE(r->core_distance[i], params.eps);
        EXPECT_GT(r->core_distance[i], 0.0);
        break;
      case PointKind::kOutlier:
        EXPECT_GT(r->core_distance[i], params.eps);
        break;
    }
  }
}

TEST(ScoresTest, ScoringDoesNotChangeTheDetection) {
  Rng rng(92);
  const PointSet ps = testing::ClusteredPoints(&rng, 600, 3, 3, 0.3);
  Params params;
  params.eps = 2.0;
  params.min_pts = 6;
  auto plain = DetectSequential(ps, params);
  params.compute_scores = true;
  auto scored = DetectSequential(ps, params);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(scored.ok());
  EXPECT_EQ(plain->kinds, scored->kinds);
  EXPECT_EQ(plain->outliers, scored->outliers);
}

TEST(ScoresTest, BorderScoreMatchesBruteForceNearestCore) {
  Rng rng(93);
  const PointSet ps = testing::ClusteredPoints(&rng, 300, 2, 2, 0.3);
  Params params;
  params.eps = 1.0;
  params.min_pts = 6;
  params.compute_scores = true;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < ps.size(); ++i) {
    if (r->kinds[i] != PointKind::kBorder) {
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < ps.size(); ++j) {
      if (r->kinds[j] == PointKind::kCore) {
        best = std::min(best, std::sqrt(ps.SquaredDistance(i, j)));
      }
    }
    // For border points the nearest core point is within eps, hence inside
    // the neighbor-cell horizon: the score is exact.
    EXPECT_NEAR(r->core_distance[i], best, 1e-9) << "point " << i;
  }
}

}  // namespace
}  // namespace dbscout::core

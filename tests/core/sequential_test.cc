#include <cmath>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

TEST(SequentialTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  Params params;
  params.eps = 0.0;
  EXPECT_FALSE(DetectSequential(ps, params).ok());
  params.eps = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(DetectSequential(ps, params).ok());
}

TEST(SequentialTest, EmptyInput) {
  PointSet ps(2);
  Params params;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->outliers.empty());
  EXPECT_TRUE(r->kinds.empty());
  EXPECT_EQ(r->num_cells, 0u);
}

TEST(SequentialTest, SinglePointIsOutlierUnlessMinPtsOne) {
  PointSet ps(2);
  ps.Add({1.0, 1.0});
  Params params;
  params.eps = 1.0;
  params.min_pts = 2;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outliers, (std::vector<uint32_t>{0}));

  // With minPts=1 every point is core (it neighbors itself).
  params.min_pts = 1;
  r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->outliers.empty());
  EXPECT_EQ(r->kinds[0], PointKind::kCore);
}

TEST(SequentialTest, DuplicatePointsFormDenseCell) {
  PointSet ps(3);
  for (int i = 0; i < 6; ++i) {
    ps.Add({2.0, 2.0, 2.0});
  }
  ps.Add({100.0, 100.0, 100.0});  // isolated
  Params params;
  params.eps = 0.5;
  params.min_pts = 5;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_dense_cells, 1u);
  EXPECT_EQ(r->outliers, (std::vector<uint32_t>{6}));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(r->kinds[i], PointKind::kCore);
  }
}

TEST(SequentialTest, TightClusterPlusFarPoint) {
  Rng rng(1);
  PointSet ps(2);
  for (int i = 0; i < 50; ++i) {
    ps.Add({rng.Gaussian(0, 0.1), rng.Gaussian(0, 0.1)});
  }
  ps.Add({50.0, 50.0});
  Params params;
  params.eps = 1.0;
  params.min_pts = 5;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outliers, (std::vector<uint32_t>{50}));
  EXPECT_EQ(r->num_core, 50u);
}

TEST(SequentialTest, BorderPointDetected) {
  // Stack of 7 points at 0.0, a bridge point at 0.95, a tail point at 1.9.
  // With eps=1, minPts=8: the stack (8 neighbors) and the bridge (9) are
  // core; the tail has only 2 neighbors but sits within eps of the core
  // bridge -> border, not outlier.
  PointSet ps(1);
  for (int i = 0; i < 7; ++i) {
    ps.Add({0.0});
  }
  ps.Add({0.95});
  ps.Add({1.9});
  Params params;
  params.eps = 1.0;
  params.min_pts = 8;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(r->kinds[i], PointKind::kCore);
  }
  EXPECT_EQ(r->kinds[7], PointKind::kCore);
  EXPECT_EQ(r->kinds[8], PointKind::kBorder);
  EXPECT_TRUE(r->outliers.empty());
  EXPECT_EQ(r->num_border, 1u);

  // Raise minPts beyond reach: nothing is core, everything is an outlier.
  params.min_pts = 10;
  r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outliers.size(), 9u);
}

TEST(SequentialTest, EpsBoundaryIsInclusive) {
  // Definition 2 uses dist <= eps: two points exactly eps apart count as
  // neighbors of each other.
  PointSet ps(1);
  ps.Add({0.0});
  ps.Add({1.0});
  Params params;
  params.eps = 1.0;
  params.min_pts = 2;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->outliers.empty());
  EXPECT_EQ(r->kinds[0], PointKind::kCore);
  EXPECT_EQ(r->kinds[1], PointKind::kCore);
}

TEST(SequentialTest, MatchesBruteForceOnClusteredData) {
  Rng rng(42);
  const PointSet ps = testing::ClusteredPoints(&rng, 600, 2, 4, 0.15);
  Params params;
  params.eps = 1.2;
  params.min_pts = 8;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kinds, testing::BruteForceKinds(ps, params.eps, params.min_pts));
  EXPECT_EQ(r->outliers,
            testing::BruteForceOutliers(ps, params.eps, params.min_pts));
}

TEST(SequentialTest, LabelCountsAreConsistent) {
  Rng rng(5);
  const PointSet ps = testing::ClusteredPoints(&rng, 400, 3, 3, 0.2);
  Params params;
  params.eps = 2.0;
  params.min_pts = 10;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  size_t core = 0;
  size_t border = 0;
  size_t outlier = 0;
  for (auto kind : r->kinds) {
    core += kind == PointKind::kCore;
    border += kind == PointKind::kBorder;
    outlier += kind == PointKind::kOutlier;
  }
  EXPECT_EQ(core, r->num_core);
  EXPECT_EQ(border, r->num_border);
  EXPECT_EQ(outlier, r->outliers.size());
  EXPECT_EQ(core + border + outlier, ps.size());
  EXPECT_EQ(r->phases.size(), 5u);
  EXPECT_GE(r->num_cells, r->num_core_cells);
  EXPECT_GE(r->num_core_cells, r->num_dense_cells);
}

TEST(SequentialTest, OutliersAreSortedAscending) {
  Rng rng(6);
  const PointSet ps = testing::UniformPoints(&rng, 300, 2, -10, 10);
  Params params;
  params.eps = 0.8;
  params.min_pts = 4;
  auto r = DetectSequential(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::is_sorted(r->outliers.begin(), r->outliers.end()));
}

}  // namespace
}  // namespace dbscout::core

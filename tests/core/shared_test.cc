#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

TEST(SharedMemoryTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  ThreadPool pool(2);
  Params params;
  params.eps = -1.0;
  EXPECT_FALSE(DetectSharedMemory(ps, params, &pool).ok());
}

TEST(SharedMemoryTest, EmptyInput) {
  PointSet ps(2);
  ThreadPool pool(2);
  Params params;
  auto r = DetectSharedMemory(ps, params, &pool);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->outliers.empty());
}

TEST(SharedMemoryTest, MatchesSequentialOnClusteredData) {
  Rng rng(61);
  const PointSet ps = testing::ClusteredPoints(&rng, 1500, 2, 5, 0.2);
  ThreadPool pool(4);
  for (double eps : {0.8, 1.5, 3.0}) {
    for (int min_pts : {3, 8, 20}) {
      Params params;
      params.eps = eps;
      params.min_pts = min_pts;
      auto expected = DetectSequential(ps, params);
      ASSERT_TRUE(expected.ok());
      auto shared = DetectSharedMemory(ps, params, &pool);
      ASSERT_TRUE(shared.ok());
      EXPECT_EQ(shared->kinds, expected->kinds)
          << "eps=" << eps << " minPts=" << min_pts;
      EXPECT_EQ(shared->outliers, expected->outliers);
      EXPECT_EQ(shared->num_cells, expected->num_cells);
      EXPECT_EQ(shared->num_dense_cells, expected->num_dense_cells);
      EXPECT_EQ(shared->num_core_cells, expected->num_core_cells);
    }
  }
}

TEST(SharedMemoryTest, DeterministicAcrossThreadCounts) {
  Rng rng(62);
  const PointSet ps = testing::ClusteredPoints(&rng, 1000, 3, 4, 0.3);
  Params params;
  params.eps = 2.0;
  params.min_pts = 8;
  std::vector<std::vector<uint32_t>> results;
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    auto r = DetectSharedMemory(ps, params, &pool);
    ASSERT_TRUE(r.ok());
    results.push_back(r->outliers);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(SharedMemoryTest, FacadeDispatch) {
  Rng rng(63);
  const PointSet ps = testing::ClusteredPoints(&rng, 500, 2, 3, 0.2);
  Params params;
  params.eps = 1.0;
  params.min_pts = 5;
  params.engine = Engine::kSharedMemory;
  auto via_facade = Detect(ps, params);
  ASSERT_TRUE(via_facade.ok());
  params.engine = Engine::kSequential;
  auto reference = Detect(ps, params);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(via_facade->outliers, reference->outliers);
  EXPECT_EQ(std::string(EngineName(Engine::kSharedMemory)), "shared-memory");
}

TEST(SharedMemoryTest, MatchesBruteForce) {
  Rng rng(64);
  const PointSet ps = testing::UniformPoints(&rng, 400, 2, -6, 6);
  ThreadPool pool(4);
  Params params;
  params.eps = 1.0;
  params.min_pts = 4;
  auto r = DetectSharedMemory(ps, params, &pool);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kinds,
            testing::BruteForceKinds(ps, params.eps, params.min_pts));
}

TEST(SharedMemoryTest, PhaseStatsPopulated) {
  Rng rng(65);
  const PointSet ps = testing::ClusteredPoints(&rng, 800, 2, 3, 0.2);
  ThreadPool pool(4);
  Params params;
  params.eps = 1.2;
  params.min_pts = 6;
  auto r = DetectSharedMemory(ps, params, &pool);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->phases.size(), 5u);
  EXPECT_GT(r->phases[2].distance_computations, 0u);
}

}  // namespace
}  // namespace dbscout::core

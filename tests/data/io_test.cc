#include "data/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

PointSet SamplePoints() {
  PointSet ps(3);
  ps.Add({1.5, -2.25, 1e10});
  ps.Add({0.0, 1.0 / 3.0, -7.0});
  return ps;
}

TEST(IoTest, CsvRoundTrip) {
  const std::string path = TempPath("points.csv");
  const PointSet original = SamplePoints();
  ASSERT_TRUE(SavePointsCsv(path, original).ok());
  auto loaded = LoadPointsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dims(), 3u);
  EXPECT_EQ(loaded->values(), original.values());
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRoundTrip) {
  const std::string path = TempPath("points.dbsc");
  const PointSet original = SamplePoints();
  ASSERT_TRUE(SavePointsBinary(path, original).ok());
  auto loaded = LoadPointsBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dims(), 3u);
  EXPECT_EQ(loaded->values(), original.values());
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRoundTripEmptySet) {
  const std::string path = TempPath("empty.dbsc");
  PointSet original(2);
  ASSERT_TRUE(SavePointsBinary(path, original).ok());
  auto loaded = LoadPointsBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dims(), 2u);
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("bogus.dbsc");
  std::ofstream(path) << "not a dbsc file at all";
  auto loaded = LoadPointsBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRejectsTruncatedFile) {
  const std::string full = TempPath("full.dbsc");
  ASSERT_TRUE(SavePointsBinary(full, SamplePoints()).ok());
  std::ifstream in(full, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const std::string truncated_path = TempPath("truncated.dbsc");
  std::ofstream(truncated_path, std::ios::binary)
      << contents.substr(0, contents.size() - 8);
  auto loaded = LoadPointsBinary(truncated_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::remove(full.c_str());
  std::remove(truncated_path.c_str());
}

TEST(IoTest, LoadCsvRejectsEmptyFile) {
  const std::string path = TempPath("empty.csv");
  std::ofstream(path) << "";
  auto loaded = LoadPointsCsv(path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(IoTest, LoadCsvMissingFile) {
  auto loaded = LoadPointsCsv("/no/such/file.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dbscout

#include "data/point_set.h"

#include <gtest/gtest.h>

namespace dbscout {
namespace {

TEST(PointSetTest, EmptyByDefault) {
  PointSet ps(3);
  EXPECT_EQ(ps.dims(), 3u);
  EXPECT_EQ(ps.size(), 0u);
  EXPECT_TRUE(ps.empty());
}

TEST(PointSetTest, AddAndAccess) {
  PointSet ps(2);
  ps.Add({1.0, 2.0});
  ps.Add({3.0, 4.0});
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ps.at(1, 1), 4.0);
  const auto p1 = ps[1];
  EXPECT_DOUBLE_EQ(p1[0], 3.0);
}

TEST(PointSetTest, FromRowMajorValidatesShape) {
  auto ok = PointSet::FromRowMajor(2, {1, 2, 3, 4});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);

  auto bad = PointSet::FromRowMajor(3, {1, 2, 3, 4});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto zero_dims = PointSet::FromRowMajor(0, {});
  EXPECT_FALSE(zero_dims.ok());
}

TEST(PointSetTest, SquaredDistance) {
  PointSet ps(2);
  ps.Add({0.0, 0.0});
  ps.Add({3.0, 4.0});
  EXPECT_DOUBLE_EQ(ps.SquaredDistance(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(ps.SquaredDistance(0, 0), 0.0);
}

TEST(PointSetTest, AppendConcatenates) {
  PointSet a(2);
  a.Add({1, 1});
  PointSet b(2);
  b.Add({2, 2});
  b.Add({3, 3});
  a.Append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 3.0);
}

TEST(PointSetTest, SelectPicksIndicesInOrder) {
  PointSet ps(1);
  for (double v : {10.0, 11.0, 12.0, 13.0}) {
    ps.Add({v});
  }
  const std::vector<uint32_t> idx = {3, 0, 2};
  PointSet sel = ps.Select(idx);
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_DOUBLE_EQ(sel.at(0, 0), 13.0);
  EXPECT_DOUBLE_EQ(sel.at(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(sel.at(2, 0), 12.0);
}

TEST(PointSetTest, BoundsComputeMinMaxPerDimension) {
  PointSet ps(2);
  ps.Add({-1.0, 5.0});
  ps.Add({3.0, -2.0});
  ps.Add({0.0, 0.0});
  const auto box = ps.Bounds();
  EXPECT_DOUBLE_EQ(box.min[0], -1.0);
  EXPECT_DOUBLE_EQ(box.max[0], 3.0);
  EXPECT_DOUBLE_EQ(box.min[1], -2.0);
  EXPECT_DOUBLE_EQ(box.max[1], 5.0);
}

}  // namespace
}  // namespace dbscout

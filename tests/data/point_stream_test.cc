#include "data/point_stream.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/io.h"
#include "testutil.h"

namespace dbscout {
namespace {

std::string WriteSample(const PointSet& points, const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(SavePointsBinary(path, points).ok());
  return path;
}

TEST(PointFileReaderTest, ReadsHeaderAndBatches) {
  Rng rng(1);
  const PointSet points = testing::UniformPoints(&rng, 1000, 3, -5, 5);
  const std::string path = WriteSample(points, "stream_basic.dbsc");
  auto reader = PointFileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->dims(), 3u);
  EXPECT_EQ(reader->num_points(), 1000u);

  PointSet all(3);
  PointSet batch(3);
  for (;;) {
    auto got = reader->ReadBatch(128, &batch);
    ASSERT_TRUE(got.ok());
    if (*got == 0) {
      break;
    }
    EXPECT_LE(*got, 128u);
    all.Append(batch);
  }
  EXPECT_EQ(all.values(), points.values());
}

TEST(PointFileReaderTest, RewindRestartsTheStream) {
  Rng rng(2);
  const PointSet points = testing::UniformPoints(&rng, 100, 2, 0, 1);
  const std::string path = WriteSample(points, "stream_rewind.dbsc");
  auto reader = PointFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  PointSet batch(2);
  ASSERT_TRUE(reader->ReadBatch(60, &batch).ok());
  EXPECT_EQ(reader->position(), 60u);
  ASSERT_TRUE(reader->Rewind().ok());
  EXPECT_EQ(reader->position(), 0u);
  auto got = reader->ReadBatch(1000, &batch);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 100u);
  EXPECT_EQ(batch.values(), points.values());
  std::remove(path.c_str());
}

TEST(PointFileReaderTest, EmptyFileYieldsZeroBatches) {
  const PointSet points(4);
  const std::string path = WriteSample(points, "stream_empty.dbsc");
  auto reader = PointFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_points(), 0u);
  PointSet batch(4);
  auto got = reader->ReadBatch(10, &batch);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0u);
  std::remove(path.c_str());
}

TEST(PointFileReaderTest, RejectsBogusFiles) {
  const std::string path = ::testing::TempDir() + "/stream_bogus.dbsc";
  std::ofstream(path) << "definitely not a point file";
  auto reader = PointFileReader::Open(path);
  EXPECT_FALSE(reader.ok());
  std::remove(path.c_str());
  EXPECT_FALSE(PointFileReader::Open("/no/such/file.dbsc").ok());
}

TEST(PointFileReaderTest, DetectsTruncation) {
  Rng rng(3);
  const PointSet points = testing::UniformPoints(&rng, 50, 2, 0, 1);
  const std::string full = WriteSample(points, "stream_full.dbsc");
  std::ifstream in(full, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const std::string truncated = ::testing::TempDir() + "/stream_trunc.dbsc";
  std::ofstream(truncated, std::ios::binary)
      << contents.substr(0, contents.size() - 16);
  auto reader = PointFileReader::Open(truncated);
  ASSERT_TRUE(reader.ok());
  PointSet batch(2);
  auto got = reader->ReadBatch(100, &batch);
  EXPECT_FALSE(got.ok());
  std::remove(full.c_str());
  std::remove(truncated.c_str());
}

}  // namespace
}  // namespace dbscout

#include "dataflow/context.h"

#include <gtest/gtest.h>

namespace dbscout::dataflow {
namespace {

TEST(ContextTest, DefaultsDeriveFromHardware) {
  ExecutionContext ctx;
  EXPECT_GE(ctx.pool().num_threads(), 1u);
  EXPECT_EQ(ctx.default_partitions(), 2 * ctx.pool().num_threads());
}

TEST(ContextTest, ExplicitConfiguration) {
  ExecutionContext ctx(3, 17);
  EXPECT_EQ(ctx.pool().num_threads(), 3u);
  EXPECT_EQ(ctx.default_partitions(), 17u);
  ctx.set_default_partitions(0);  // clamped to 1
  EXPECT_EQ(ctx.default_partitions(), 1u);
  ctx.set_default_partitions(5);
  EXPECT_EQ(ctx.default_partitions(), 5u);
}

TEST(ContextTest, MetricsAccumulateAndReset) {
  ExecutionContext ctx(2, 4);
  StageMetrics a;
  a.name = "StageA";
  a.seconds = 0.25;
  a.shuffled_records = 10;
  StageMetrics b;
  b.name = "StageB";
  b.seconds = 0.75;
  b.shuffled_records = 5;
  ctx.RecordStage(a);
  ctx.RecordStage(b);
  const auto stages = ctx.stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "StageA");
  const auto summary = ctx.Summary();
  EXPECT_DOUBLE_EQ(summary.seconds, 1.0);
  EXPECT_EQ(summary.shuffled_records, 15u);
  EXPECT_EQ(summary.stages, 2u);
  ctx.ResetMetrics();
  EXPECT_TRUE(ctx.stages().empty());
  EXPECT_EQ(ctx.Summary().stages, 0u);
}

TEST(ContextTest, RecordingIsThreadSafe) {
  ExecutionContext ctx(4, 4);
  for (int t = 0; t < 4; ++t) {
    ctx.pool().Submit([&ctx] {
      for (int i = 0; i < 250; ++i) {
        StageMetrics m;
        m.name = "concurrent";
        m.records_in = 1;
        ctx.RecordStage(m);
      }
    });
  }
  ctx.pool().WaitIdle();
  EXPECT_EQ(ctx.stages().size(), 1000u);
}

}  // namespace
}  // namespace dbscout::dataflow

#include "dataflow/dataset.h"

#include <algorithm>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

namespace dbscout::dataflow {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  ExecutionContext ctx_{/*num_threads=*/4, /*default_partitions=*/8};
};

TEST_F(DatasetTest, FromVectorPreservesAllRecords) {
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto ds = Dataset<int>::FromVector(&ctx_, values, 7);
  EXPECT_EQ(ds.num_partitions(), 7u);
  EXPECT_EQ(ds.Count(), 100u);
  auto collected = ds.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, values);
}

TEST_F(DatasetTest, FromVectorUsesContextDefaultPartitions) {
  auto ds = Dataset<int>::FromVector(&ctx_, {1, 2, 3});
  EXPECT_EQ(ds.num_partitions(), 8u);
}

TEST_F(DatasetTest, MorePartitionsThanRecords) {
  auto ds = Dataset<int>::FromVector(&ctx_, {1, 2}, 16);
  EXPECT_EQ(ds.num_partitions(), 16u);
  EXPECT_EQ(ds.Count(), 2u);
}

TEST_F(DatasetTest, IotaGeneratesRange) {
  auto ds = Dataset<uint32_t>::Iota(&ctx_, 10u, 3);
  auto collected = ds.Collect();
  std::sort(collected.begin(), collected.end());
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(collected[i], i);
  }
}

TEST_F(DatasetTest, MapTransformsEveryRecord) {
  auto ds = Dataset<int>::Iota(&ctx_, 50, 4);
  auto doubled = ds.Map([](int x) { return 2 * x; });
  auto values = doubled.Collect();
  std::sort(values.begin(), values.end());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(values[i], 2 * i);
  }
}

TEST_F(DatasetTest, MapCanChangeType) {
  auto ds = Dataset<int>::FromVector(&ctx_, {1, 22, 333});
  auto strings = ds.Map([](int x) { return std::to_string(x); });
  auto values = strings.Collect();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::string>{"1", "22", "333"}));
}

TEST_F(DatasetTest, FlatMapEmitsZeroOrMore) {
  auto ds = Dataset<int>::FromVector(&ctx_, {0, 1, 2, 3}, 2);
  auto expanded = ds.FlatMap<int>([](int x, std::vector<int>* out) {
    for (int i = 0; i < x; ++i) {
      out->push_back(x);
    }
  });
  EXPECT_EQ(expanded.Count(), 6u);  // 0+1+2+3
}

TEST_F(DatasetTest, FilterKeepsMatching) {
  auto ds = Dataset<int>::Iota(&ctx_, 100, 5);
  auto evens = ds.Filter([](int x) { return x % 2 == 0; });
  EXPECT_EQ(evens.Count(), 50u);
  for (int v : evens.Collect()) {
    EXPECT_EQ(v % 2, 0);
  }
}

TEST_F(DatasetTest, UnionConcatenates) {
  auto a = Dataset<int>::FromVector(&ctx_, {1, 2}, 2);
  auto b = Dataset<int>::FromVector(&ctx_, {3}, 1);
  auto u = a.Union(b);
  EXPECT_EQ(u.num_partitions(), 3u);
  auto values = u.Collect();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3}));
}

TEST_F(DatasetTest, RepartitionPreservesRecords) {
  auto ds = Dataset<int>::Iota(&ctx_, 100, 2);
  auto re = ds.Repartition(10);
  EXPECT_EQ(re.num_partitions(), 10u);
  auto values = re.Collect();
  std::sort(values.begin(), values.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(values[i], i);
  }
}

TEST_F(DatasetTest, ForEachVisitsEverything) {
  auto ds = Dataset<int>::Iota(&ctx_, 20, 4);
  int sum = 0;
  ds.ForEach([&sum](int x) { sum += x; });
  EXPECT_EQ(sum, 190);
}

TEST_F(DatasetTest, TransformationsRecordStageMetrics) {
  ctx_.ResetMetrics();
  auto ds = Dataset<int>::Iota(&ctx_, 10, 2);
  ds.Map([](int x) { return x; }, "MyMap");
  const auto stages = ctx_.stages();
  ASSERT_FALSE(stages.empty());
  const auto& last = stages.back();
  EXPECT_EQ(last.name, "MyMap");
  EXPECT_EQ(last.records_in, 10u);
  EXPECT_EQ(last.records_out, 10u);
  EXPECT_EQ(last.shuffled_records, 0u);
}

TEST_F(DatasetTest, RepartitionCountsAsShuffle) {
  ctx_.ResetMetrics();
  auto ds = Dataset<int>::Iota(&ctx_, 10, 2);
  ds.Repartition(4);
  EXPECT_EQ(ctx_.Summary().shuffled_records, 10u);
}

TEST_F(DatasetTest, SourceIsImmutableUnderTransforms) {
  auto ds = Dataset<int>::FromVector(&ctx_, {1, 2, 3}, 1);
  auto mapped = ds.Map([](int x) { return x * 10; });
  auto original = ds.Collect();
  std::sort(original.begin(), original.end());
  EXPECT_EQ(original, (std::vector<int>{1, 2, 3}));
}

TEST_F(DatasetTest, BroadcastSharesValue) {
  Broadcast<std::vector<int>> b(std::vector<int>{5, 6, 7});
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ((*b)[0], 5);
  Broadcast<std::vector<int>> copy = b;
  EXPECT_EQ(copy.get(), b.get());
}

}  // namespace
}  // namespace dbscout::dataflow

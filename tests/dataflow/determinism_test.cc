// The dataflow engine must be deterministic in its *results* regardless of
// thread count and partitioning — the property that makes the parallel
// DBSCOUT testable against the sequential oracle.
#include <algorithm>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "dataflow/pair_ops.h"

namespace dbscout::dataflow {
namespace {

/// Canonical word-count pipeline over a synthetic corpus.
std::map<std::string, uint64_t> WordCount(size_t threads, size_t partitions) {
  ExecutionContext ctx(threads, partitions);
  std::vector<std::string> corpus;
  const char* words[] = {"grid", "cell", "core", "outlier", "eps"};
  for (int i = 0; i < 997; ++i) {
    corpus.push_back(words[(i * i) % 5]);
  }
  auto ds = Dataset<std::string>::FromVector(&ctx, corpus, partitions);
  auto pairs = ds.Map([](const std::string& w) {
    return std::make_pair(w, uint64_t{1});
  });
  auto counts =
      ReduceByKey(pairs, [](uint64_t a, uint64_t b) { return a + b; });
  std::map<std::string, uint64_t> result;
  for (const auto& [w, c] : counts.Collect()) {
    result[w] = c;
  }
  return result;
}

TEST(DeterminismTest, WordCountStableAcrossThreadsAndPartitions) {
  const auto reference = WordCount(1, 1);
  uint64_t total = 0;
  for (const auto& [w, c] : reference) {
    total += c;
  }
  EXPECT_EQ(total, 997u);
  for (size_t threads : {2u, 4u}) {
    for (size_t partitions : {2u, 7u, 16u}) {
      EXPECT_EQ(WordCount(threads, partitions), reference)
          << threads << " threads, " << partitions << " partitions";
    }
  }
}

TEST(DeterminismTest, ChainedPipelinePreservesMultisets) {
  ExecutionContext ctx(4, 8);
  auto ds = Dataset<int>::Iota(&ctx, 5000, 8);
  // filter -> flatmap -> repartition -> distinct -> map
  auto result = ds.Filter([](int x) { return x % 3 != 0; })
                    .FlatMap<int>([](int x, std::vector<int>* out) {
                      out->push_back(x);
                      out->push_back(-x);
                    })
                    .Repartition(5)
                    .Distinct()
                    .Map([](int x) { return std::abs(x); });
  auto values = result.Collect();
  std::sort(values.begin(), values.end());
  // Each kept x contributes {x, -x}; abs folds them back; distinct keeps
  // both signs so every kept value appears exactly twice (x=0 is filtered
  // by x%3 != 0... 0 % 3 == 0 so it is dropped).
  std::vector<int> expected;
  for (int x = 1; x < 5000; ++x) {
    if (x % 3 != 0) {
      expected.push_back(x);
      expected.push_back(x);
    }
  }
  EXPECT_EQ(values, expected);
}

TEST(DeterminismTest, JoinResultSetIndependentOfPartitioning) {
  std::vector<std::pair<int, int>> lhs;
  std::vector<std::pair<int, int>> rhs;
  for (int i = 0; i < 200; ++i) {
    lhs.push_back({i % 23, i});
    rhs.push_back({i % 19, 1000 + i});
  }
  std::vector<std::tuple<int, int, int>> reference;
  {
    ExecutionContext ctx(1, 1);
    auto joined =
        Join(Dataset<std::pair<int, int>>::FromVector(&ctx, lhs, 1),
             Dataset<std::pair<int, int>>::FromVector(&ctx, rhs, 1));
    for (const auto& [k, vw] : joined.Collect()) {
      reference.emplace_back(k, vw.first, vw.second);
    }
    std::sort(reference.begin(), reference.end());
  }
  for (size_t partitions : {3u, 11u}) {
    ExecutionContext ctx(4, partitions);
    auto joined = Join(
        Dataset<std::pair<int, int>>::FromVector(&ctx, lhs, partitions),
        Dataset<std::pair<int, int>>::FromVector(&ctx, rhs, partitions));
    std::vector<std::tuple<int, int, int>> result;
    for (const auto& [k, vw] : joined.Collect()) {
      result.emplace_back(k, vw.first, vw.second);
    }
    std::sort(result.begin(), result.end());
    EXPECT_EQ(result, reference) << partitions << " partitions";
  }
}

}  // namespace
}  // namespace dbscout::dataflow

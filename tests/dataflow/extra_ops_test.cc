#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "dataflow/pair_ops.h"

namespace dbscout::dataflow {
namespace {

using IntPair = std::pair<int, int>;

class ExtraOpsTest : public ::testing::Test {
 protected:
  ExecutionContext ctx_{/*num_threads=*/4, /*default_partitions=*/4};
};

TEST_F(ExtraOpsTest, SampleKeepsApproximatelyTheFraction) {
  auto ds = Dataset<int>::Iota(&ctx_, 20000, 8);
  auto sampled = ds.Sample(0.25, /*seed=*/7);
  const double kept = static_cast<double>(sampled.Count());
  EXPECT_NEAR(kept / 20000.0, 0.25, 0.02);
  // Deterministic in the seed.
  EXPECT_EQ(ds.Sample(0.25, 7).Count(), sampled.Count());
  EXPECT_NE(ds.Sample(0.25, 8).Count(), sampled.Count());
}

TEST_F(ExtraOpsTest, SampleEdgesKeepAllOrNothing) {
  auto ds = Dataset<int>::Iota(&ctx_, 100, 3);
  EXPECT_EQ(ds.Sample(0.0, 1).Count(), 0u);
  EXPECT_EQ(ds.Sample(1.0, 1).Count(), 100u);
}

TEST_F(ExtraOpsTest, DistinctCollapsesDuplicatesAcrossPartitions) {
  std::vector<int> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(i % 17);
  }
  auto ds = Dataset<int>::FromVector(&ctx_, values, 6);
  auto unique = ds.Distinct();
  auto collected = unique.Collect();
  std::sort(collected.begin(), collected.end());
  ASSERT_EQ(collected.size(), 17u);
  for (int i = 0; i < 17; ++i) {
    EXPECT_EQ(collected[i], i);
  }
}

TEST_F(ExtraOpsTest, DistinctCountsAsShuffle) {
  ctx_.ResetMetrics();
  auto ds = Dataset<int>::FromVector(&ctx_, {1, 1, 2}, 2);
  ds.Distinct();
  EXPECT_EQ(ctx_.Summary().shuffled_records, 3u);
}

TEST_F(ExtraOpsTest, MapPartitionsSeesWholePartitions) {
  auto ds = Dataset<int>::Iota(&ctx_, 100, 5);
  // Emit one record per partition: its size.
  auto sizes = ds.MapPartitions<size_t>(
      [](const std::vector<int>& in, std::vector<size_t>* out) {
        out->push_back(in.size());
      });
  auto collected = sizes.Collect();
  ASSERT_EQ(collected.size(), 5u);
  size_t total = 0;
  for (size_t s : collected) {
    total += s;
  }
  EXPECT_EQ(total, 100u);
}

TEST_F(ExtraOpsTest, CountByKeyMatchesManualCounting) {
  std::vector<IntPair> records;
  for (int i = 0; i < 120; ++i) {
    records.push_back({i % 5, i});
  }
  auto ds = Dataset<IntPair>::FromVector(&ctx_, records, 4);
  auto counts = CountByKey(ds);
  std::map<int, uint64_t> result;
  for (const auto& [k, c] : counts.Collect()) {
    result[k] = c;
  }
  ASSERT_EQ(result.size(), 5u);
  for (const auto& [k, c] : result) {
    EXPECT_EQ(c, 24u) << "key " << k;
  }
}

TEST_F(ExtraOpsTest, KeysAndValuesProject) {
  auto ds = Dataset<IntPair>::FromVector(&ctx_, {{1, 10}, {2, 20}}, 2);
  auto keys = Keys(ds).Collect();
  auto values = Values(ds).Collect();
  std::sort(keys.begin(), keys.end());
  std::sort(values.begin(), values.end());
  EXPECT_EQ(keys, (std::vector<int>{1, 2}));
  EXPECT_EQ(values, (std::vector<int>{10, 20}));
}

TEST_F(ExtraOpsTest, CoGroupPairsValueListsPerKey) {
  auto left = Dataset<IntPair>::FromVector(
      &ctx_, {{1, 10}, {1, 11}, {2, 20}}, 2);
  auto right = Dataset<std::pair<int, char>>::FromVector(
      &ctx_, {{1, 'a'}, {3, 'c'}}, 2);
  auto grouped = CoGroup(left, right);
  std::map<int, std::pair<std::vector<int>, std::vector<char>>> result;
  for (auto& [k, group] : grouped.Collect()) {
    std::sort(group.first.begin(), group.first.end());
    result[k] = group;
  }
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[1].first, (std::vector<int>{10, 11}));
  EXPECT_EQ(result[1].second, (std::vector<char>{'a'}));
  EXPECT_EQ(result[2].first, (std::vector<int>{20}));
  EXPECT_TRUE(result[2].second.empty());
  EXPECT_TRUE(result[3].first.empty());
  EXPECT_EQ(result[3].second, (std::vector<char>{'c'}));
}

TEST_F(ExtraOpsTest, CoGroupAgreesWithJoinOnInnerKeys) {
  std::vector<IntPair> lhs;
  std::vector<IntPair> rhs;
  for (int i = 0; i < 50; ++i) {
    lhs.push_back({i % 7, i});
    rhs.push_back({i % 9, i});
  }
  auto left = Dataset<IntPair>::FromVector(&ctx_, lhs, 3);
  auto right = Dataset<IntPair>::FromVector(&ctx_, rhs, 3);
  size_t cogroup_inner = 0;
  CoGroup(left, right).ForEach([&](const auto& rec) {
    cogroup_inner += rec.second.first.size() * rec.second.second.size();
  });
  EXPECT_EQ(cogroup_inner, Join(left, right).Count());
}

}  // namespace
}  // namespace dbscout::dataflow

#include "dataflow/pair_ops.h"

#include <algorithm>
#include <map>
#include <string>

#include <gtest/gtest.h>

namespace dbscout::dataflow {
namespace {

using IntPair = std::pair<int, int>;

class PairOpsTest : public ::testing::Test {
 protected:
  ExecutionContext ctx_{/*num_threads=*/4, /*default_partitions=*/4};
};

TEST_F(PairOpsTest, ReduceByKeySumsValues) {
  std::vector<IntPair> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back({i % 7, 1});
  }
  auto ds = Dataset<IntPair>::FromVector(&ctx_, records, 5);
  auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
  std::map<int, int> result;
  for (const auto& [k, v] : reduced.Collect()) {
    EXPECT_TRUE(result.emplace(k, v).second) << "duplicate key " << k;
  }
  ASSERT_EQ(result.size(), 7u);
  int total = 0;
  for (const auto& [k, v] : result) {
    total += v;
  }
  EXPECT_EQ(total, 100);
  EXPECT_EQ(result[0], 15);  // 0,7,...,98
}

TEST_F(PairOpsTest, ReduceByKeySingleRecordPerKeyPassesThrough) {
  auto ds = Dataset<IntPair>::FromVector(&ctx_, {{1, 10}, {2, 20}}, 2);
  auto reduced = ReduceByKey(ds, [](int, int) -> int {
    ADD_FAILURE() << "reducer must not run for singleton keys";
    return 0;
  });
  EXPECT_EQ(reduced.Count(), 2u);
}

TEST_F(PairOpsTest, ReduceByKeyRespectsRequestedPartitions) {
  auto ds = Dataset<IntPair>::FromVector(&ctx_, {{1, 1}, {2, 2}}, 2);
  auto reduced =
      ReduceByKey(ds, [](int a, int b) { return a + b; }, /*partitions=*/9);
  EXPECT_EQ(reduced.num_partitions(), 9u);
}

TEST_F(PairOpsTest, GroupByKeyCollectsAllValues) {
  std::vector<IntPair> records = {{1, 10}, {2, 20}, {1, 11}, {1, 12}, {2, 21}};
  auto ds = Dataset<IntPair>::FromVector(&ctx_, records, 3);
  auto grouped = GroupByKey(ds);
  std::map<int, std::vector<int>> result;
  for (auto& [k, vs] : grouped.Collect()) {
    std::sort(vs.begin(), vs.end());
    result[k] = vs;
  }
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[1], (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(result[2], (std::vector<int>{20, 21}));
}

TEST_F(PairOpsTest, JoinEmitsCrossProductPerKey) {
  auto left = Dataset<std::pair<int, std::string>>::FromVector(
      &ctx_, {{1, "a"}, {1, "b"}, {2, "c"}, {3, "z"}}, 2);
  auto right = Dataset<IntPair>::FromVector(
      &ctx_, {{1, 100}, {1, 101}, {2, 200}, {4, 400}}, 2);
  auto joined = Join(left, right);
  // key 1: 2x2 = 4 pairs; key 2: 1; keys 3,4 unmatched.
  EXPECT_EQ(joined.Count(), 5u);
  int key1 = 0;
  for (const auto& [k, vw] : joined.Collect()) {
    EXPECT_TRUE(k == 1 || k == 2);
    if (k == 1) {
      ++key1;
      EXPECT_TRUE(vw.first == "a" || vw.first == "b");
      EXPECT_TRUE(vw.second == 100 || vw.second == 101);
    }
  }
  EXPECT_EQ(key1, 4);
}

TEST_F(PairOpsTest, JoinEmptySideYieldsEmpty) {
  auto left = Dataset<IntPair>::FromVector(&ctx_, {}, 2);
  auto right = Dataset<IntPair>::FromVector(&ctx_, {{1, 1}}, 2);
  EXPECT_EQ(Join(left, right).Count(), 0u);
}

TEST_F(PairOpsTest, ShuffleMetricsAreRecorded) {
  ctx_.ResetMetrics();
  auto ds = Dataset<IntPair>::FromVector(&ctx_, {{1, 1}, {2, 2}, {1, 3}}, 2);
  ReduceByKey(ds, [](int a, int b) { return a + b; });
  const auto summary = ctx_.Summary();
  EXPECT_EQ(summary.shuffled_records, 3u);
}

TEST_F(PairOpsTest, CollectAsMapLastWriteWins) {
  auto ds = Dataset<IntPair>::FromVector(&ctx_, {{1, 10}, {2, 20}}, 2);
  auto map = CollectAsMap(ds);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map[1], 10);
}

TEST_F(PairOpsTest, CollectGroupedGathersValues) {
  auto ds =
      Dataset<IntPair>::FromVector(&ctx_, {{1, 10}, {1, 11}, {2, 20}}, 3);
  auto map = CollectGrouped(ds);
  ASSERT_EQ(map.size(), 2u);
  std::sort(map[1].begin(), map[1].end());
  EXPECT_EQ(map[1], (std::vector<int>{10, 11}));
}

TEST_F(PairOpsTest, ReduceByKeyIsDeterministicAcrossPartitionCounts) {
  std::vector<IntPair> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back({i % 13, i});
  }
  std::map<int, int> reference;
  for (const auto& [k, v] : records) {
    reference[k] += v;
  }
  for (size_t parts : {1u, 2u, 8u, 32u}) {
    auto ds = Dataset<IntPair>::FromVector(&ctx_, records, parts);
    auto reduced =
        ReduceByKey(ds, [](int a, int b) { return a + b; }, parts);
    std::map<int, int> result;
    for (const auto& [k, v] : reduced.Collect()) {
      result[k] = v;
    }
    EXPECT_EQ(result, reference) << "partitions=" << parts;
  }
}

}  // namespace
}  // namespace dbscout::dataflow

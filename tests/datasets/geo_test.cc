#include "datasets/geo.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "grid/grid.h"

namespace dbscout::datasets {
namespace {

TEST(GeoTest, GeolifeLikeShapeAndDeterminism) {
  const PointSet a = GeolifeLike(20000, 5);
  EXPECT_EQ(a.size(), 20000u);
  EXPECT_EQ(a.dims(), 3u);
  const PointSet b = GeolifeLike(20000, 5);
  EXPECT_EQ(a.values(), b.values());
}

TEST(GeoTest, GeolifeLikeIsHeavilySkewed) {
  // The paper: with eps = 200, ~40% of Geolife falls into the single most
  // populous cell. Verify the generator reproduces that concentration.
  const PointSet ps = GeolifeLike(30000, 6);
  auto g = grid::Grid::Build(ps, 8000.0);
  ASSERT_TRUE(g.ok());
  size_t biggest = 0;
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    biggest = std::max(biggest, g->CellSize(c));
  }
  EXPECT_GT(static_cast<double>(biggest) / static_cast<double>(ps.size()),
            0.25);
}

TEST(GeoTest, OsmLikeShapeAndSpread) {
  const PointSet ps = OsmLike(30000, 7);
  EXPECT_EQ(ps.size(), 30000u);
  EXPECT_EQ(ps.dims(), 2u);
  const auto box = ps.Bounds();
  // Spread over a planetary-scale extent.
  EXPECT_GT(box.max[0] - box.min[0], 1e7);
  // Far less skewed than Geolife: the most populous eps-cell holds a
  // minority of the data.
  auto g = grid::Grid::Build(ps, 1e6);
  ASSERT_TRUE(g.ok());
  size_t biggest = 0;
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    biggest = std::max(biggest, g->CellSize(c));
  }
  EXPECT_LT(static_cast<double>(biggest) / static_cast<double>(ps.size()),
            0.25);
}

TEST(GeoTest, SampleFractionApproximatesRequestedSize) {
  const PointSet ps = OsmLike(20000, 9);
  const PointSet sample = SampleFraction(ps, 0.25, 1);
  EXPECT_NEAR(static_cast<double>(sample.size()), 5000.0, 300.0);
  EXPECT_EQ(sample.dims(), ps.dims());
}

TEST(GeoTest, SampleFractionEdgeCases) {
  const PointSet ps = OsmLike(1000, 9);
  EXPECT_EQ(SampleFraction(ps, 0.0, 1).size(), 0u);
  EXPECT_EQ(SampleFraction(ps, 1.0, 1).size(), 1000u);
}

TEST(GeoTest, ScaleWithNoiseKeepsOriginalAndJittersReplicas) {
  PointSet ps(2);
  ps.Add({10.0, 20.0});
  ps.Add({-5.0, 3.0});
  const PointSet scaled = ScaleWithNoise(ps, 3, 0.5, 2);
  ASSERT_EQ(scaled.size(), 6u);
  // First replica is the untouched original.
  EXPECT_DOUBLE_EQ(scaled.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(scaled.at(1, 1), 3.0);
  // Later replicas are jittered but stay within +-jitter.
  for (size_t rep = 1; rep < 3; ++rep) {
    for (size_t i = 0; i < 2; ++i) {
      for (size_t k = 0; k < 2; ++k) {
        const double delta =
            scaled.at(rep * 2 + i, k) - ps.at(i, k);
        EXPECT_LE(std::abs(delta), 0.5);
        EXPECT_NE(delta, 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace dbscout::datasets

#include "datasets/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datasets/shapes.h"

namespace dbscout::datasets {
namespace {

using Generator = LabeledDataset (*)(size_t, double, uint64_t);

class SyntheticGeneratorTest
    : public ::testing::TestWithParam<std::pair<const char*, Generator>> {};

TEST_P(SyntheticGeneratorTest, SizesLabelsAndDeterminism) {
  const auto [name, generate] = GetParam();
  const size_t n = 1500;
  const double contamination = 0.03;
  const auto ds = generate(n, contamination, 7);
  EXPECT_EQ(ds.points.size(), n);
  EXPECT_EQ(ds.labels.size(), n);
  EXPECT_EQ(ds.points.dims(), 2u);
  EXPECT_NEAR(ds.Contamination(), contamination, 0.005) << name;
  // Deterministic in the seed.
  const auto again = generate(n, contamination, 7);
  EXPECT_EQ(ds.points.values(), again.points.values());
  EXPECT_EQ(ds.labels, again.labels);
  // Different seed, different data.
  const auto other = generate(n, contamination, 8);
  EXPECT_NE(ds.points.values(), other.points.values());
}

INSTANTIATE_TEST_SUITE_P(
    All, SyntheticGeneratorTest,
    ::testing::Values(std::make_pair("blobs", &Blobs),
                      std::make_pair("blobs_vd", &BlobsVariedDensity),
                      std::make_pair("circles", &Circles),
                      std::make_pair("moons", &Moons)),
    [](const auto& info) { return std::string(info.param.first); });

TEST(SyntheticTest, BlobsOutliersAreSparserThanInliers) {
  const auto ds = Blobs(3000, 0.02, 11);
  // Mean nearest-inlier distance of outliers must exceed that of inliers:
  // the injected points are genuinely isolated on average.
  double inlier_sum = 0.0;
  double outlier_sum = 0.0;
  size_t inliers = 0;
  size_t outliers = 0;
  for (size_t i = 0; i < ds.points.size(); ++i) {
    double best = 1e300;
    for (size_t j = 0; j < ds.points.size(); ++j) {
      if (i != j) {
        best = std::min(best, ds.points.SquaredDistance(i, j));
      }
    }
    if (ds.labels[i]) {
      outlier_sum += std::sqrt(best);
      ++outliers;
    } else {
      inlier_sum += std::sqrt(best);
      ++inliers;
    }
  }
  ASSERT_GT(outliers, 0u);
  EXPECT_GT(outlier_sum / outliers, 2.0 * inlier_sum / inliers);
}

TEST(ShapesTest, ClutoFamilyHasDocumentedNoiseFractions) {
  EXPECT_NEAR(ClutoT4Like(4000, 1).Contamination(), 0.10, 0.005);
  EXPECT_NEAR(ClutoT5Like(4000, 1).Contamination(), 0.15, 0.005);
  EXPECT_NEAR(ClutoT7Like(4000, 1).Contamination(), 0.08, 0.005);
  EXPECT_NEAR(ClutoT8Like(4000, 1).Contamination(), 0.04, 0.005);
  EXPECT_NEAR(CureT2Like(4000, 1).Contamination(), 0.05, 0.005);
}

TEST(ShapesTest, ScenesAreDeterministicAndSized) {
  const auto a = ClutoT7Like(2500, 42);
  const auto b = ClutoT7Like(2500, 42);
  EXPECT_EQ(a.points.values(), b.points.values());
  EXPECT_EQ(a.points.size(), 2500u);
  EXPECT_EQ(a.labels.size(), 2500u);
  EXPECT_EQ(a.name, "Cluto-t7-10k");
}

}  // namespace
}  // namespace dbscout::datasets

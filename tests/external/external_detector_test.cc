#include "external/external_detector.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/dbscout.h"
#include "data/io.h"
#include "datasets/geo.h"
#include "testutil.h"

namespace dbscout::external {
namespace {

// Input paths carry the pid: ctest runs sibling test processes against the
// same TempDir, and fixed names let one process truncate or remove a file
// another is streaming (the historical ExternalStripeSweep flake).
std::string WriteSample(const PointSet& points, const char* name) {
  const std::string path = ::testing::TempDir() + "/" +
                           std::to_string(::getpid()) + "_" + name;
  EXPECT_TRUE(SavePointsBinary(path, points).ok());
  return path;
}

ExternalParams MakeParams(double eps, int min_pts, size_t stripe_points) {
  ExternalParams params;
  params.eps = eps;
  params.min_pts = min_pts;
  params.target_stripe_points = stripe_points;
  params.batch_points = 512;
  params.tmp_dir = ::testing::TempDir();
  return params;
}

TEST(ExternalDetectorTest, RejectsInvalidParams) {
  ExternalParams params;
  params.eps = 0.0;
  EXPECT_FALSE(DetectExternal("x", params).ok());
  params.eps = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(DetectExternal("x", params).ok());
  params.min_pts = 5;
  params.batch_points = 0;
  EXPECT_FALSE(DetectExternal("x", params).ok());
}

TEST(ExternalDetectorTest, RejectsMissingFile) {
  ExternalParams params;
  auto r = DetectExternal("/no/such/points.dbsc", params);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ExternalDetectorTest, EmptyFile) {
  const std::string path = WriteSample(PointSet(2), "ext_empty.dbsc");
  auto r = DetectExternal(path, MakeParams(1.0, 5, 1000));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->outliers.empty());
  EXPECT_EQ(r->stripes, 0u);
  std::remove(path.c_str());
}

TEST(ExternalDetectorTest, MatchesInMemoryOnSingleStripe) {
  Rng rng(71);
  const PointSet points = testing::ClusteredPoints(&rng, 2000, 2, 4, 0.2);
  const std::string path = WriteSample(points, "ext_single.dbsc");
  core::Params in_memory;
  in_memory.eps = 1.3;
  in_memory.min_pts = 8;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  auto r = DetectExternal(path, MakeParams(1.3, 8, 1 << 20));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->stripes, 1u);
  EXPECT_EQ(r->outliers, expected->outliers);
  EXPECT_EQ(r->num_core, expected->num_core);
  EXPECT_EQ(r->num_border, expected->num_border);
  std::remove(path.c_str());
}

class ExternalStripeSweepTest
    : public ::testing::TestWithParam<size_t /*stripe points*/> {};

TEST_P(ExternalStripeSweepTest, MatchesInMemoryAcrossStripeSizes) {
  Rng rng(72);
  const PointSet points = testing::ClusteredPoints(&rng, 3000, 3, 5, 0.25);
  const std::string path = WriteSample(points, "ext_sweep.dbsc");
  core::Params in_memory;
  in_memory.eps = 2.0;
  in_memory.min_pts = 10;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  auto r = DetectExternal(path, MakeParams(2.0, 10, GetParam()));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->outliers, expected->outliers)
      << "stripes=" << r->stripes;
  EXPECT_EQ(r->num_core, expected->num_core);
  EXPECT_EQ(r->num_border, expected->num_border);
  EXPECT_EQ(r->num_core + r->num_border + r->outliers.size(), points.size());
  if (GetParam() < points.size()) {
    EXPECT_GT(r->stripes, 1u);
    EXPECT_GT(r->spilled_records, points.size());  // halo replication
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(StripeSizes, ExternalStripeSweepTest,
                         ::testing::Values(100, 300, 1000, 5000),
                         [](const auto& info) {
                           return "target" + std::to_string(info.param);
                         });

TEST(ExternalDetectorTest, MatchesInMemoryOnSkewedGps) {
  // The skew stress: most points in one dim-0 slab range.
  const PointSet points = datasets::GeolifeLike(4000, 73);
  const std::string path = WriteSample(points, "ext_geo.dbsc");
  core::Params in_memory;
  in_memory.eps = 800.0;
  in_memory.min_pts = 10;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  auto r = DetectExternal(path, MakeParams(800.0, 10, 500));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->outliers, expected->outliers);
  std::remove(path.c_str());
}

TEST(ExternalDetectorTest, ExplicitStripeCountOverride) {
  Rng rng(74);
  const PointSet points = testing::UniformPoints(&rng, 2000, 2, -50, 50);
  const std::string path = WriteSample(points, "ext_override.dbsc");
  auto params = MakeParams(2.0, 6, 1 << 20);
  params.num_stripes = 8;
  auto r = DetectExternal(path, params);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(r->stripes, 6u);  // slab granularity may merge a few
  core::Params in_memory;
  in_memory.eps = 2.0;
  in_memory.min_pts = 6;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->outliers, expected->outliers);
  std::remove(path.c_str());
}

// Regression for the historical ExternalStripeSweep flake: two detections
// sharing one tmp_dir must not collide on spill files. Before spill paths
// carried a process-unique token, both runs named their stripe-s spill
// "dbscout_spill_<s>.tmp", so concurrent runs silently read each other's
// (different!) datasets and produced wrong outlier sets.
TEST(ExternalDetectorTest, ConcurrentRunsShareTmpDirWithoutInterference) {
  Rng rng_a(81);
  Rng rng_b(82);
  const PointSet a = testing::ClusteredPoints(&rng_a, 1500, 2, 4, 0.25);
  const PointSet b = testing::UniformPoints(&rng_b, 1500, 2, -40, 40);
  const std::string path_a = WriteSample(a, "ext_conc_a.dbsc");
  const std::string path_b = WriteSample(b, "ext_conc_b.dbsc");
  const std::string inputs[2] = {path_a, path_b};
  // Forced multi-stripe so several spill files exist per run.
  const ExternalParams params[2] = {MakeParams(1.2, 8, 200),
                                    MakeParams(2.5, 6, 150)};
  std::vector<uint32_t> expected[2];
  for (int i = 0; i < 2; ++i) {
    core::Params in_memory;
    in_memory.eps = params[i].eps;
    in_memory.min_pts = params[i].min_pts;
    auto r = core::DetectSequential(i == 0 ? a : b, in_memory);
    ASSERT_TRUE(r.ok());
    expected[i] = r->outliers;
  }
  for (int round = 0; round < 5; ++round) {
    Result<ExternalDetection> results[2] = {
        Status::Internal("not run"), Status::Internal("not run")};
    ThreadPool pool(2);
    pool.ParallelForChunked(2, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        results[i] = DetectExternal(inputs[i], params[i]);
      }
    });
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status();
      EXPECT_GT(results[i]->stripes, 1u);
      EXPECT_EQ(results[i]->outliers, expected[i]) << "run " << i;
    }
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// Deterministic stripe-boundary coverage: a dim-0 lattice whose sparse
// points sit exactly on slab boundaries, swept across forced stripe
// counts, so core/outlier decisions for boundary cells must resolve from
// halo data alone.
TEST(ExternalDetectorTest, LatticeAcrossStripeBoundaries) {
  PointSet points(2);
  // Dense columns at x = 0, 4, 8, ..., 36; a lone point between each pair.
  for (int col = 0; col < 10; ++col) {
    for (int i = 0; i < 12; ++i) {
      points.Add({4.0 * col, 0.1 * i});
    }
    points.Add({4.0 * col + 2.0, 0.5});
  }
  core::Params in_memory;
  in_memory.eps = 1.5;
  in_memory.min_pts = 6;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  const std::string path = WriteSample(points, "ext_lattice.dbsc");
  for (size_t num_stripes : {2u, 3u, 5u, 9u}) {
    auto params = MakeParams(1.5, 6, 1 << 20);
    params.num_stripes = num_stripes;
    auto r = DetectExternal(path, params);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->outliers, expected->outliers)
        << "num_stripes=" << num_stripes << " stripes=" << r->stripes;
    EXPECT_EQ(r->num_core, expected->num_core);
    EXPECT_EQ(r->num_border, expected->num_border);
  }
  std::remove(path.c_str());
}

TEST(ExternalDetectorTest, ReportsPhaseStatsUnderCanonicalNames) {
  Rng rng(83);
  const PointSet points = testing::ClusteredPoints(&rng, 1200, 2, 3, 0.25);
  const std::string path = WriteSample(points, "ext_phases.dbsc");
  auto r = DetectExternal(path, MakeParams(1.1, 7, 300));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->phases.size(), 5u);
  EXPECT_EQ(r->phases[0].name, "grid");
  EXPECT_EQ(r->phases[1].name, "dense_cell_map");
  EXPECT_EQ(r->phases[2].name, "core_points");
  EXPECT_EQ(r->phases[3].name, "core_cell_map");
  EXPECT_EQ(r->phases[4].name, "outliers");
  EXPECT_GT(r->phases[2].distance_computations, 0u);
  std::remove(path.c_str());
}

TEST(ExternalDetectorTest, ReportsGridStatistics) {
  Rng rng(75);
  const PointSet points = testing::ClusteredPoints(&rng, 1500, 2, 3, 0.2);
  const std::string path = WriteSample(points, "ext_stats.dbsc");
  auto r = DetectExternal(path, MakeParams(1.0, 6, 400));
  ASSERT_TRUE(r.ok());
  core::Params in_memory;
  in_memory.eps = 1.0;
  in_memory.min_pts = 6;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->num_cells, expected->num_cells);
  EXPECT_EQ(r->num_dense_cells, expected->num_dense_cells);
  EXPECT_GT(r->max_stripe_points, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbscout::external

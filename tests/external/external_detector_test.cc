#include "external/external_detector.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "data/io.h"
#include "datasets/geo.h"
#include "testutil.h"

namespace dbscout::external {
namespace {

std::string WriteSample(const PointSet& points, const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(SavePointsBinary(path, points).ok());
  return path;
}

ExternalParams MakeParams(double eps, int min_pts, size_t stripe_points) {
  ExternalParams params;
  params.eps = eps;
  params.min_pts = min_pts;
  params.target_stripe_points = stripe_points;
  params.batch_points = 512;
  params.tmp_dir = ::testing::TempDir();
  return params;
}

TEST(ExternalDetectorTest, RejectsInvalidParams) {
  ExternalParams params;
  params.eps = 0.0;
  EXPECT_FALSE(DetectExternal("x", params).ok());
  params.eps = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(DetectExternal("x", params).ok());
  params.min_pts = 5;
  params.batch_points = 0;
  EXPECT_FALSE(DetectExternal("x", params).ok());
}

TEST(ExternalDetectorTest, RejectsMissingFile) {
  ExternalParams params;
  auto r = DetectExternal("/no/such/points.dbsc", params);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ExternalDetectorTest, EmptyFile) {
  const std::string path = WriteSample(PointSet(2), "ext_empty.dbsc");
  auto r = DetectExternal(path, MakeParams(1.0, 5, 1000));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->outliers.empty());
  EXPECT_EQ(r->stripes, 0u);
  std::remove(path.c_str());
}

TEST(ExternalDetectorTest, MatchesInMemoryOnSingleStripe) {
  Rng rng(71);
  const PointSet points = testing::ClusteredPoints(&rng, 2000, 2, 4, 0.2);
  const std::string path = WriteSample(points, "ext_single.dbsc");
  core::Params in_memory;
  in_memory.eps = 1.3;
  in_memory.min_pts = 8;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  auto r = DetectExternal(path, MakeParams(1.3, 8, 1 << 20));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->stripes, 1u);
  EXPECT_EQ(r->outliers, expected->outliers);
  EXPECT_EQ(r->num_core, expected->num_core);
  EXPECT_EQ(r->num_border, expected->num_border);
  std::remove(path.c_str());
}

class ExternalStripeSweepTest
    : public ::testing::TestWithParam<size_t /*stripe points*/> {};

TEST_P(ExternalStripeSweepTest, MatchesInMemoryAcrossStripeSizes) {
  Rng rng(72);
  const PointSet points = testing::ClusteredPoints(&rng, 3000, 3, 5, 0.25);
  const std::string path = WriteSample(points, "ext_sweep.dbsc");
  core::Params in_memory;
  in_memory.eps = 2.0;
  in_memory.min_pts = 10;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  auto r = DetectExternal(path, MakeParams(2.0, 10, GetParam()));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->outliers, expected->outliers)
      << "stripes=" << r->stripes;
  EXPECT_EQ(r->num_core, expected->num_core);
  EXPECT_EQ(r->num_border, expected->num_border);
  EXPECT_EQ(r->num_core + r->num_border + r->outliers.size(), points.size());
  if (GetParam() < points.size()) {
    EXPECT_GT(r->stripes, 1u);
    EXPECT_GT(r->spilled_records, points.size());  // halo replication
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(StripeSizes, ExternalStripeSweepTest,
                         ::testing::Values(100, 300, 1000, 5000),
                         [](const auto& info) {
                           return "target" + std::to_string(info.param);
                         });

TEST(ExternalDetectorTest, MatchesInMemoryOnSkewedGps) {
  // The skew stress: most points in one dim-0 slab range.
  const PointSet points = datasets::GeolifeLike(4000, 73);
  const std::string path = WriteSample(points, "ext_geo.dbsc");
  core::Params in_memory;
  in_memory.eps = 800.0;
  in_memory.min_pts = 10;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  auto r = DetectExternal(path, MakeParams(800.0, 10, 500));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->outliers, expected->outliers);
  std::remove(path.c_str());
}

TEST(ExternalDetectorTest, ExplicitStripeCountOverride) {
  Rng rng(74);
  const PointSet points = testing::UniformPoints(&rng, 2000, 2, -50, 50);
  const std::string path = WriteSample(points, "ext_override.dbsc");
  auto params = MakeParams(2.0, 6, 1 << 20);
  params.num_stripes = 8;
  auto r = DetectExternal(path, params);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(r->stripes, 6u);  // slab granularity may merge a few
  core::Params in_memory;
  in_memory.eps = 2.0;
  in_memory.min_pts = 6;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->outliers, expected->outliers);
  std::remove(path.c_str());
}

TEST(ExternalDetectorTest, ReportsGridStatistics) {
  Rng rng(75);
  const PointSet points = testing::ClusteredPoints(&rng, 1500, 2, 3, 0.2);
  const std::string path = WriteSample(points, "ext_stats.dbsc");
  auto r = DetectExternal(path, MakeParams(1.0, 6, 400));
  ASSERT_TRUE(r.ok());
  core::Params in_memory;
  in_memory.eps = 1.0;
  in_memory.min_pts = 6;
  auto expected = core::DetectSequential(points, in_memory);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->num_cells, expected->num_cells);
  EXPECT_EQ(r->num_dense_cells, expected->num_dense_cells);
  EXPECT_GT(r->max_stripe_points, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbscout::external

#include "external/kdistance.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "data/io.h"
#include "testutil.h"

namespace dbscout::external {
namespace {

std::string WriteSample(const PointSet& points, const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(SavePointsBinary(path, points).ok());
  return path;
}

TEST(SampleKDistanceTest, RejectsInvalidParams) {
  EXPECT_FALSE(SampleKDistance("x", 0, 100).ok());
  EXPECT_FALSE(SampleKDistance("x", 5, 5).ok());  // sample <= k
  EXPECT_FALSE(SampleKDistance("/no/such/file", 5, 100).ok());
}

TEST(SampleKDistanceTest, SmallFileIsSampledCompletely) {
  Rng rng(1);
  const PointSet ps = testing::ClusteredPoints(&rng, 400, 2, 3, 0.1);
  const std::string path = WriteSample(ps, "kdist_small.dbsc");
  auto r = SampleKDistance(path, 5, 10000);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->sample_size, 400u);
  EXPECT_EQ(r->total_points, 400u);
  EXPECT_DOUBLE_EQ(r->SamplingInflation(2), 1.0);
  // With the whole file sampled, the curve equals the in-memory one.
  auto exact = analysis::ComputeKDistance(ps, 5);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(r->curve.distances, exact->distances);
  std::remove(path.c_str());
}

TEST(SampleKDistanceTest, ReservoirIsUniformAndDeterministic) {
  Rng rng(2);
  const PointSet ps = testing::UniformPoints(&rng, 20000, 2, 0.0, 100.0);
  const std::string path = WriteSample(ps, "kdist_big.dbsc");
  auto a = SampleKDistance(path, 5, 1000, /*seed=*/3);
  auto b = SampleKDistance(path, 5, 1000, /*seed=*/3);
  auto c = SampleKDistance(path, 5, 1000, /*seed=*/4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->sample_size, 1000u);
  EXPECT_EQ(a->total_points, 20000u);
  EXPECT_EQ(a->curve.distances, b->curve.distances);
  EXPECT_NE(a->curve.distances, c->curve.distances);
  std::remove(path.c_str());
}

TEST(SampleKDistanceTest, InflationMatchesTheoryOnUniformData) {
  // On uniform data, sampled k-distances should exceed full-data ones by
  // roughly (n/m)^(1/d).
  Rng rng(5);
  const PointSet ps = testing::UniformPoints(&rng, 16000, 2, 0.0, 100.0);
  const std::string path = WriteSample(ps, "kdist_uniform.dbsc");
  auto sampled = SampleKDistance(path, 5, 1000, 7);
  ASSERT_TRUE(sampled.ok());
  auto exact = analysis::ComputeKDistance(ps, 5);
  ASSERT_TRUE(exact.ok());
  const double sampled_median =
      sampled->curve.distances[sampled->curve.distances.size() / 2];
  const double exact_median =
      exact->distances[exact->distances.size() / 2];
  const double inflation = sampled->SamplingInflation(2);
  EXPECT_NEAR(inflation, 4.0, 1e-9);  // (16000/1000)^(1/2)
  EXPECT_NEAR(sampled_median / exact_median, inflation,
              0.35 * inflation);  // loose statistical tolerance
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbscout::external

#include "grid/cell_coord.h"

#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

namespace dbscout::grid {
namespace {

TEST(CellCoordTest, ZeroAndIndexing) {
  CellCoord c = CellCoord::Zero(3);
  EXPECT_EQ(c.dims(), 3u);
  EXPECT_EQ(c[0], 0);
  c[1] = -5;
  EXPECT_EQ(c[1], -5);
}

TEST(CellCoordTest, ConstructFromSpan) {
  const int64_t values[] = {1, -2, 3};
  CellCoord c({values, 3});
  EXPECT_EQ(c.dims(), 3u);
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[1], -2);
  EXPECT_EQ(c[2], 3);
}

TEST(CellCoordTest, EqualityRespectsDimsAndValues) {
  const int64_t a_vals[] = {1, 2};
  const int64_t b_vals[] = {1, 2};
  const int64_t c_vals[] = {1, 3};
  const int64_t d_vals[] = {1, 2, 0};
  EXPECT_EQ(CellCoord({a_vals, 2}), CellCoord({b_vals, 2}));
  EXPECT_FALSE(CellCoord({a_vals, 2}) == CellCoord({c_vals, 2}));
  EXPECT_FALSE(CellCoord({a_vals, 2}) == CellCoord({d_vals, 3}));
}

TEST(CellCoordTest, TranslatedAddsOffsets) {
  const int64_t vals[] = {10, -10};
  const int16_t offset[] = {-1, 2};
  const CellCoord moved = CellCoord({vals, 2}).Translated({offset, 2});
  EXPECT_EQ(moved[0], 9);
  EXPECT_EQ(moved[1], -8);
}

TEST(CellCoordTest, OrderingIsStrictWeak) {
  const int64_t a_vals[] = {0, 1};
  const int64_t b_vals[] = {0, 2};
  const CellCoord a({a_vals, 2});
  const CellCoord b({b_vals, 2});
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

TEST(CellCoordTest, HashSpreadsNeighboringCells) {
  std::unordered_set<uint64_t> hashes;
  for (int64_t x = -10; x <= 10; ++x) {
    for (int64_t y = -10; y <= 10; ++y) {
      const int64_t vals[] = {x, y};
      hashes.insert(CellCoord({vals, 2}).Hash());
    }
  }
  EXPECT_EQ(hashes.size(), 21u * 21u);  // no collisions on a small window
}

TEST(CellCoordTest, WorksAsUnorderedMapKey) {
  std::unordered_set<CellCoord, CellCoordHash> set;
  const int64_t vals[] = {7, -3};
  set.insert(CellCoord({vals, 2}));
  set.insert(CellCoord({vals, 2}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(CellCoordTest, StreamOutput) {
  const int64_t vals[] = {1, -2};
  std::ostringstream os;
  os << CellCoord({vals, 2});
  EXPECT_EQ(os.str(), "(1,-2)");
}

}  // namespace
}  // namespace dbscout::grid

#include "grid/cell_map.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dbscout::grid {
namespace {

CellCoord Coord2(int64_t x, int64_t y) {
  const int64_t vals[] = {x, y};
  return CellCoord({vals, 2});
}

// Builds a cell map from a grid the way the sequential driver would:
// classification decided by the caller (count >= min_pts), passed as a bool.
CellMap BuildFromGrid(const Grid& g, uint32_t min_pts) {
  CellMap map;
  for (uint32_t c = 0; c < g.num_cells(); ++c) {
    const uint32_t count = static_cast<uint32_t>(g.CellSize(c));
    map.Insert(g.CoordOf(c), count, count >= min_pts);
  }
  return map;
}

PointSet DensePlusSparse() {
  PointSet ps(2);
  // 5 points in cell (0,0), 2 in (1,-1), 1 in (4,4).
  ps.Add({0.1, 0.1});
  ps.Add({0.2, 0.2});
  ps.Add({0.3, 0.3});
  ps.Add({0.4, 0.4});
  ps.Add({0.5, 0.5});
  ps.Add({1.1, -0.3});
  ps.Add({1.9, -0.9});
  ps.Add({4.5, 4.5});
  return ps;
}

TEST(CellMapTest, InsertedCellsClassifyByCount) {
  const PointSet ps = DensePlusSparse();
  auto g = Grid::Build(ps, std::sqrt(2.0));
  ASSERT_TRUE(g.ok());
  const CellMap map = BuildFromGrid(*g, 5);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.TypeOf(Coord2(0, 0)), CellType::kDense);
  EXPECT_EQ(map.TypeOf(Coord2(1, -1)), CellType::kOther);
  EXPECT_EQ(map.TypeOf(Coord2(4, 4)), CellType::kOther);
  EXPECT_EQ(map.CountOf(Coord2(0, 0)), 5u);
  EXPECT_EQ(map.CountOf(Coord2(1, -1)), 2u);
  EXPECT_EQ(map.CountByType(CellType::kDense), 1u);
}

TEST(CellMapTest, AbsentCellsAreEmpty) {
  const PointSet ps = DensePlusSparse();
  auto g = Grid::Build(ps, std::sqrt(2.0));
  const CellMap map = BuildFromGrid(*g, 5);
  EXPECT_EQ(map.TypeOf(Coord2(99, 99)), CellType::kOther);
  EXPECT_EQ(map.CountOf(Coord2(99, 99)), 0u);
  EXPECT_FALSE(map.Contains(Coord2(99, 99)));
}

TEST(CellMapTest, MarkCoreUpgradesButNeverDowngrades) {
  const PointSet ps = DensePlusSparse();
  auto g = Grid::Build(ps, std::sqrt(2.0));
  CellMap map = BuildFromGrid(*g, 5);
  map.MarkCore(Coord2(1, -1));
  EXPECT_EQ(map.TypeOf(Coord2(1, -1)), CellType::kCore);
  map.MarkCore(Coord2(0, 0));  // dense stays dense
  EXPECT_EQ(map.TypeOf(Coord2(0, 0)), CellType::kDense);
  EXPECT_TRUE(map.IsCoreCell(Coord2(0, 0)));
  EXPECT_TRUE(map.IsCoreCell(Coord2(1, -1)));
  EXPECT_FALSE(map.IsCoreCell(Coord2(4, 4)));
}

TEST(CellMapTest, InsertTypesByCallerVerdict) {
  CellMap map;
  map.Insert(Coord2(0, 0), 10, /*dense=*/true);
  map.Insert(Coord2(1, 1), 4, /*dense=*/false);
  EXPECT_EQ(map.TypeOf(Coord2(0, 0)), CellType::kDense);
  EXPECT_EQ(map.TypeOf(Coord2(1, 1)), CellType::kOther);
  EXPECT_EQ(map.CountOf(Coord2(0, 0)), 10u);
}

TEST(CellMapTest, HasCoreNeighborUsesStencil) {
  auto stencil = GetNeighborStencil(2);
  ASSERT_TRUE(stencil.ok());
  CellMap map;
  map.Insert(Coord2(0, 0), 10, /*dense=*/true);    // dense -> core
  map.Insert(Coord2(2, 0), 1, /*dense=*/false);    // neighbor at offset (-2,0)
  map.Insert(Coord2(10, 10), 1, /*dense=*/false);  // isolated
  EXPECT_TRUE(map.HasCoreNeighbor(Coord2(2, 0), **stencil));
  EXPECT_TRUE(map.HasCoreNeighbor(Coord2(0, 0), **stencil));  // self counts
  EXPECT_FALSE(map.HasCoreNeighbor(Coord2(10, 10), **stencil));
}

TEST(CellMapTest, ForEachNonEmptyNeighborVisitsSelfAndNeighbors) {
  auto stencil = GetNeighborStencil(2);
  ASSERT_TRUE(stencil.ok());
  CellMap map;
  map.Insert(Coord2(0, 0), 3, /*dense=*/false);
  map.Insert(Coord2(1, 1), 2, /*dense=*/false);
  map.Insert(Coord2(50, 50), 9, /*dense=*/true);
  int visited = 0;
  uint32_t total_count = 0;
  map.ForEachNonEmptyNeighbor(Coord2(0, 0), **stencil,
                              [&](const CellCoord&, CellType, uint32_t count) {
                                ++visited;
                                total_count += count;
                              });
  EXPECT_EQ(visited, 2);  // (0,0) itself and (1,1); (50,50) is far
  EXPECT_EQ(total_count, 5u);
}

}  // namespace
}  // namespace dbscout::grid

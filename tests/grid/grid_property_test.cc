// Property sweeps for the grid across dimensionalities and eps values:
// CSR invariants, geometric cell membership, and neighbor symmetry on real
// (not synthetic-offset) grids.
#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "grid/grid.h"
#include "testutil.h"

namespace dbscout::grid {
namespace {

using Case = std::tuple<size_t /*dims*/, double /*eps*/>;

class GridPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  PointSet MakePoints() const {
    const auto [dims, eps] = GetParam();
    Rng rng(500 + dims);
    PointSet ps = testing::ClusteredPoints(&rng, 600, dims, 3, 0.25);
    // Boundary stress: points exactly on multiples of the cell side.
    const double side = eps / std::sqrt(static_cast<double>(dims));
    std::vector<double> p(dims);
    for (int i = -3; i <= 3; ++i) {
      for (size_t k = 0; k < dims; ++k) {
        p[k] = i * side;
      }
      ps.Add(p);
    }
    return ps;
  }
};

TEST_P(GridPropertyTest, CsrPartitionInvariant) {
  const auto [dims, eps] = GetParam();
  const PointSet ps = MakePoints();
  auto g = Grid::Build(ps, eps);
  ASSERT_TRUE(g.ok());
  std::set<uint32_t> seen;
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    for (uint32_t p : g->PointsInCell(c)) {
      EXPECT_TRUE(seen.insert(p).second);
      EXPECT_EQ(g->CellIdOfPoint(p), c);
    }
  }
  EXPECT_EQ(seen.size(), ps.size());
}

TEST_P(GridPropertyTest, GeometricMembership) {
  const auto [dims, eps] = GetParam();
  const PointSet ps = MakePoints();
  auto g = Grid::Build(ps, eps);
  ASSERT_TRUE(g.ok());
  const double side = g->side();
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    const CellCoord& coord = g->CoordOf(c);
    for (uint32_t p : g->PointsInCell(c)) {
      for (size_t k = 0; k < dims; ++k) {
        const double lo = static_cast<double>(coord[k]) * side;
        EXPECT_GE(ps.at(p, k), lo - 1e-9);
        EXPECT_LT(ps.at(p, k), lo + side + 1e-9);
      }
    }
  }
}

TEST_P(GridPropertyTest, NeighborRelationIsSymmetric) {
  const auto [dims, eps] = GetParam();
  const PointSet ps = MakePoints();
  auto g = Grid::Build(ps, eps);
  ASSERT_TRUE(g.ok());
  auto stencil = GetNeighborStencil(dims);
  ASSERT_TRUE(stencil.ok());
  // N in Neighbors(C) <=> C in Neighbors(N), the substitution Lemma 6's
  // proof relies on.
  std::vector<std::set<uint32_t>> neighbors(g->num_cells());
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    g->ForEachNeighborCell(c, **stencil,
                           [&](uint32_t nc) { neighbors[c].insert(nc); });
    EXPECT_TRUE(neighbors[c].count(c)) << "cell is its own neighbor";
  }
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    for (uint32_t nc : neighbors[c]) {
      EXPECT_TRUE(neighbors[nc].count(c))
          << "asymmetric neighbor pair " << c << " " << nc;
    }
  }
}

TEST_P(GridPropertyTest, PointsWithinEpsShareNeighboringCells) {
  // Completeness of the stencil on real data: any two points within eps
  // must live in mutually neighboring cells.
  const auto [dims, eps] = GetParam();
  const PointSet ps = MakePoints();
  auto g = Grid::Build(ps, eps);
  ASSERT_TRUE(g.ok());
  auto stencil = GetNeighborStencil(dims);
  ASSERT_TRUE(stencil.ok());
  const double eps2 = eps * eps;
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const uint32_t a = static_cast<uint32_t>(rng.NextBounded(ps.size()));
    const uint32_t b = static_cast<uint32_t>(rng.NextBounded(ps.size()));
    if (PointSet::SquaredDistance(ps[a], ps[b]) > eps2) {
      continue;
    }
    const uint32_t cell_a = g->CellIdOfPoint(a);
    const uint32_t cell_b = g->CellIdOfPoint(b);
    bool found = false;
    g->ForEachNeighborCell(cell_a, **stencil, [&](uint32_t nc) {
      found |= nc == cell_b;
    });
    EXPECT_TRUE(found) << "points " << a << "," << b
                       << " within eps but cells not neighboring";
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const auto [dims, eps] = info.param;
  std::string eps_tag = std::to_string(eps);
  for (auto& c : eps_tag) {
    if (c == '.') {
      c = '_';
    }
  }
  std::string name = "d";
  name += std::to_string(dims);
  name += "_eps";
  name += eps_tag;
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridPropertyTest,
                         ::testing::Combine(::testing::Values(size_t{1},
                                                              size_t{2},
                                                              size_t{3},
                                                              size_t{4}),
                                            ::testing::Values(0.5, 2.0, 9.0)),
                         CaseName);

}  // namespace
}  // namespace dbscout::grid

#include "grid/grid.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "testutil.h"

namespace dbscout::grid {
namespace {

PointSet TwoDPoints(std::initializer_list<std::pair<double, double>> pts) {
  PointSet ps(2);
  for (const auto& [x, y] : pts) {
    ps.Add({x, y});
  }
  return ps;
}

TEST(GridTest, RejectsInvalidEps) {
  const PointSet ps = TwoDPoints({{0, 0}});
  EXPECT_FALSE(Grid::Build(ps, 0.0).ok());
  EXPECT_FALSE(Grid::Build(ps, -1.0).ok());
  EXPECT_FALSE(Grid::Build(ps, std::nan("")).ok());
}

TEST(GridTest, RejectsNonFiniteCoordinates) {
  PointSet ps(2);
  ps.Add({0.0, std::numeric_limits<double>::infinity()});
  EXPECT_FALSE(Grid::Build(ps, 1.0).ok());
  PointSet ps2(2);
  ps2.Add({std::nan(""), 0.0});
  EXPECT_FALSE(Grid::Build(ps2, 1.0).ok());
}

TEST(GridTest, RejectsOverflowingCoordinates) {
  PointSet ps(1);
  ps.Add({1e300});
  auto g = Grid::Build(ps, 1.0);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);
}

TEST(GridTest, SideLengthIsEpsOverSqrtD) {
  const PointSet ps = TwoDPoints({{0, 0}});
  auto g = Grid::Build(ps, std::sqrt(2.0));
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->side(), 1.0, 1e-12);
}

TEST(GridTest, AssignsPointsToExpectedCells) {
  // eps = sqrt(2) in 2D -> side 1: cells are unit squares.
  const PointSet ps = TwoDPoints({{0.5, 0.5}, {1.1, -0.3}, {1.9, -0.9},
                                  {0.7, -1.5}, {0.3, -1.8}});
  auto g = Grid::Build(ps, std::sqrt(2.0));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_cells(), 3u);
  const CellCoord c1 = g->CellOf(ps[0]);
  EXPECT_EQ(c1[0], 0);
  EXPECT_EQ(c1[1], 0);
  const CellCoord c2 = g->CellOf(ps[1]);
  EXPECT_EQ(c2[0], 1);
  EXPECT_EQ(c2[1], -1);
  const CellCoord c3 = g->CellOf(ps[3]);
  EXPECT_EQ(c3[0], 0);
  EXPECT_EQ(c3[1], -2);
}

TEST(GridTest, NegativeCoordinatesUseFloor) {
  PointSet ps(1);
  ps.Add({-0.5});
  ps.Add({-1.0});
  ps.Add({-1.5});
  auto g = Grid::Build(ps, 1.0);  // d=1 -> side = 1
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->CellOf(ps[0])[0], -1);
  EXPECT_EQ(g->CellOf(ps[1])[0], -1);  // boundary lands in its own cell
  EXPECT_EQ(g->CellOf(ps[2])[0], -2);
}

TEST(GridTest, CsrLayoutGroupsEveryPointExactlyOnce) {
  Rng rng(17);
  const PointSet ps = testing::ClusteredPoints(&rng, 2000, 3, 5, 0.1);
  auto g = Grid::Build(ps, 2.0);
  ASSERT_TRUE(g.ok());
  std::set<uint32_t> seen;
  size_t total = 0;
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    for (uint32_t p : g->PointsInCell(c)) {
      EXPECT_TRUE(seen.insert(p).second) << "duplicate point " << p;
      EXPECT_EQ(g->CellIdOfPoint(p), c);
      // Every point must geometrically belong to its cell.
      EXPECT_EQ(g->CellOf(ps[p]), g->CoordOf(c));
      ++total;
    }
    EXPECT_EQ(g->CellSize(c), g->PointsInCell(c).size());
  }
  EXPECT_EQ(total, ps.size());
}

TEST(GridTest, OrderedStorageMirrorsCsrLayout) {
  Rng rng(29);
  const PointSet ps = testing::ClusteredPoints(&rng, 1500, 3, 4, 0.2);
  auto g = Grid::Build(ps, 1.7);
  ASSERT_TRUE(g.ok());
  const size_t d = ps.dims();
  ASSERT_EQ(g->OrderedData().size(), ps.size() * d);
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    const auto cell_points = g->PointsInCell(c);
    const double* block = g->CellBlock(c);
    for (size_t j = 0; j < cell_points.size(); ++j) {
      const uint32_t p = cell_points[j];
      const uint32_t row = g->CellBeginRow(c) + static_cast<uint32_t>(j);
      // Old<->new index maps are mutually inverse.
      EXPECT_EQ(g->OriginalIndex(row), p);
      EXPECT_EQ(g->OrderedRow(p), row);
      // The permuted block holds exactly the point's coordinates, and the
      // cell's rows form one contiguous row-major stream.
      const auto expected = ps[p];
      const auto ordered = g->OrderedPoint(row);
      for (size_t k = 0; k < d; ++k) {
        EXPECT_EQ(ordered[k], expected[k]);
        EXPECT_EQ(block[j * d + k], expected[k]);
      }
    }
  }
}

TEST(GridTest, OrderedRowsWithinCellKeepAscendingOriginalOrder) {
  Rng rng(31);
  const PointSet ps = testing::UniformPoints(&rng, 800, 2, -3.0, 3.0);
  auto g = Grid::Build(ps, 0.9);
  ASSERT_TRUE(g.ok());
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    const auto cell_points = g->PointsInCell(c);
    for (size_t j = 1; j < cell_points.size(); ++j) {
      EXPECT_LT(cell_points[j - 1], cell_points[j]);
    }
  }
}

TEST(GridTest, PointsWithinOneCellAreWithinEps) {
  // The defining property of the epsilon-cell (diagonal = eps): any two
  // points sharing a cell are within eps of each other.
  Rng rng(23);
  const PointSet ps = testing::UniformPoints(&rng, 1000, 3, -5.0, 5.0);
  const double eps = 1.3;
  auto g = Grid::Build(ps, eps);
  ASSERT_TRUE(g.ok());
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    const auto pts = g->PointsInCell(c);
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        EXPECT_LE(ps.SquaredDistance(pts[i], pts[j]), eps * eps);
      }
    }
  }
}

TEST(GridTest, FindCellLookupsMatchCoords) {
  const PointSet ps = TwoDPoints({{0.5, 0.5}, {3.5, 3.5}});
  auto g = Grid::Build(ps, std::sqrt(2.0));
  ASSERT_TRUE(g.ok());
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    auto found = g->FindCell(g->CoordOf(c));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, c);
  }
  const int64_t vals[] = {100, 100};
  EXPECT_FALSE(g->FindCell(CellCoord({vals, 2})).has_value());
}

TEST(GridTest, NeighborEnumerationFindsAllCellsWithinReach) {
  // Points in adjacent unit cells must see each other via the stencil.
  const PointSet ps = TwoDPoints({{0.5, 0.5}, {1.5, 0.5}, {5.0, 5.0}});
  auto g = Grid::Build(ps, std::sqrt(2.0));
  ASSERT_TRUE(g.ok());
  auto stencil = GetNeighborStencil(2);
  ASSERT_TRUE(stencil.ok());
  const uint32_t cell0 = g->CellIdOfPoint(0);
  std::set<uint32_t> neighbors;
  g->ForEachNeighborCell(cell0, **stencil,
                         [&](uint32_t nc) { neighbors.insert(nc); });
  EXPECT_TRUE(neighbors.count(cell0));                    // self
  EXPECT_TRUE(neighbors.count(g->CellIdOfPoint(1)));      // adjacent
  EXPECT_FALSE(neighbors.count(g->CellIdOfPoint(2)));     // far away
}

TEST(GridTest, EmptyPointSetYieldsEmptyGrid) {
  PointSet ps(2);
  auto g = Grid::Build(ps, 1.0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_cells(), 0u);
  EXPECT_EQ(g->num_points(), 0u);
}

TEST(GridTest, DuplicatePointsShareOneCell) {
  PointSet ps(2);
  for (int i = 0; i < 10; ++i) {
    ps.Add({1.25, 1.25});
  }
  auto g = Grid::Build(ps, 1.0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_cells(), 1u);
  EXPECT_EQ(g->CellSize(0), 10u);
}

}  // namespace
}  // namespace dbscout::grid

#include "grid/neighborhood.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout::grid {
namespace {

TEST(NeighborhoodTest, RejectsOutOfRangeDims) {
  EXPECT_FALSE(GetNeighborStencil(0).ok());
  EXPECT_FALSE(GetNeighborStencil(kMaxDims + 1).ok());
  EXPECT_FALSE(CountNeighborOffsets(0).ok());
}

TEST(NeighborhoodTest, OneDimensional) {
  // d=1: side = eps; offsets with max(0,|j|-1)^2 < 1 are j in {-1,0,1}.
  auto stencil = GetNeighborStencil(1);
  ASSERT_TRUE(stencil.ok());
  EXPECT_EQ((*stencil)->size(), 3u);
}

// Table I of the paper: actual k_d per dimensionality.
TEST(NeighborhoodTest, PaperTableOneActualValues) {
  const std::vector<std::pair<size_t, uint64_t>> expected = {
      {2, 21},   {3, 117},   {4, 609},
      {5, 3903}, {6, 28197}, {7, 197067}};
  for (const auto& [d, kd] : expected) {
    auto count = CountNeighborOffsets(d);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, kd) << "d=" << d;
  }
}

// Table I of the paper: the loose bound of Lemma 3.
TEST(NeighborhoodTest, PaperTableOneUpperBounds) {
  EXPECT_EQ(NeighborUpperBound(2), 25u);
  EXPECT_EQ(NeighborUpperBound(3), 125u);
  EXPECT_EQ(NeighborUpperBound(4), 625u);
  EXPECT_EQ(NeighborUpperBound(5), 16807u);
  EXPECT_EQ(NeighborUpperBound(6), 117649u);
  EXPECT_EQ(NeighborUpperBound(7), 823543u);
  EXPECT_EQ(NeighborUpperBound(8), 5764801u);
  EXPECT_EQ(NeighborUpperBound(9), 40353607u);
}

TEST(NeighborhoodTest, CountMatchesMaterializedStencil) {
  for (size_t d = 1; d <= 5; ++d) {
    auto stencil = GetNeighborStencil(d);
    auto count = CountNeighborOffsets(d);
    ASSERT_TRUE(stencil.ok());
    ASSERT_TRUE(count.ok());
    EXPECT_EQ((*stencil)->size(), *count) << "d=" << d;
  }
}

TEST(NeighborhoodTest, ContainsSelfOffset) {
  for (size_t d = 1; d <= 4; ++d) {
    auto stencil = GetNeighborStencil(d);
    ASSERT_TRUE(stencil.ok());
    bool has_zero = false;
    for (const auto& offset : (*stencil)->offsets) {
      bool all_zero = true;
      for (size_t k = 0; k < d; ++k) {
        all_zero &= offset[k] == 0;
      }
      has_zero |= all_zero;
    }
    EXPECT_TRUE(has_zero) << "d=" << d;
  }
}

TEST(NeighborhoodTest, OffsetsAreUniqueAndSymmetric) {
  for (size_t d : {2, 3, 4}) {
    auto stencil = GetNeighborStencil(d);
    ASSERT_TRUE(stencil.ok());
    std::set<std::vector<int>> seen;
    for (const auto& offset : (*stencil)->offsets) {
      std::vector<int> key(d);
      std::vector<int> negated(d);
      for (size_t k = 0; k < d; ++k) {
        key[k] = offset[k];
        negated[k] = -offset[k];
      }
      EXPECT_TRUE(seen.insert(key).second) << "duplicate offset, d=" << d;
      // N in Neighbors(C) <=> C in Neighbors(N): -j must also be a neighbor.
      uint64_t gap = 0;
      for (size_t k = 0; k < d; ++k) {
        const int a = std::abs(negated[k]);
        gap += a == 0 ? 0 : static_cast<uint64_t>(a - 1) * (a - 1);
      }
      EXPECT_LT(gap, d);
    }
  }
}

// Cross-check the pruned enumeration against a brute-force scan for small d.
TEST(NeighborhoodTest, MatchesBruteForceEnumeration) {
  for (size_t d = 1; d <= 4; ++d) {
    const int radius =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(d))));
    uint64_t brute = 0;
    std::vector<int> j(d, -radius);
    for (;;) {
      uint64_t gap = 0;
      for (size_t k = 0; k < d; ++k) {
        const int a = std::abs(j[k]);
        gap += a == 0 ? 0 : static_cast<uint64_t>(a - 1) * (a - 1);
      }
      brute += gap < d;
      size_t k = 0;
      while (k < d && ++j[k] > radius) {
        j[k] = -radius;
        ++k;
      }
      if (k == d) break;
    }
    auto count = CountNeighborOffsets(d);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, brute) << "d=" << d;
  }
}

// The neighbor condition must be exactly "min inter-cell distance < eps":
// verify geometrically that for every included offset a point pair at
// distance < eps can exist, and for every excluded one it cannot.
TEST(NeighborhoodTest, OffsetsMatchGeometricMinimumDistance) {
  // With side = eps/sqrt(d), the minimum squared inter-cell distance for
  // offset j is (sum_i max(0,|j_i|-1)^2) * eps^2/d, so "min distance < eps"
  // is exactly "sum_i max(0,|j_i|-1)^2 < d" — evaluate it in integers to
  // avoid float rounding at the boundary (e.g. offset (2,2) in 2D sits at
  // distance exactly eps and must be excluded).
  const int d = 2;
  auto stencil = GetNeighborStencil(d);
  ASSERT_TRUE(stencil.ok());
  for (int jx = -3; jx <= 3; ++jx) {
    for (int jy = -3; jy <= 3; ++jy) {
      int min_dist_units = 0;  // in units of eps^2/d
      for (int a : {jx, jy}) {
        const int gap = a == 0 ? 0 : std::abs(a) - 1;
        min_dist_units += gap * gap;
      }
      bool in_stencil = false;
      for (const auto& offset : (*stencil)->offsets) {
        if (offset[0] == jx && offset[1] == jy) {
          in_stencil = true;
          break;
        }
      }
      EXPECT_EQ(in_stencil, min_dist_units < d)
          << "offset (" << jx << "," << jy << ")";
    }
  }
}

}  // namespace
}  // namespace dbscout::grid

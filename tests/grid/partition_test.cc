#include "grid/partition.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout::grid {
namespace {

std::map<int64_t, uint64_t> UniformHistogram(int64_t lo, int64_t hi,
                                             uint64_t per_slab) {
  std::map<int64_t, uint64_t> hist;
  for (int64_t s = lo; s <= hi; ++s) {
    hist[s] = per_slab;
  }
  return hist;
}

TEST(RegionPlanTest, EmptyHistogramYieldsEmptyPlan) {
  const RegionPlan plan = RegionPlan::Build({}, 4, 2);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.num_regions(), 0u);
}

TEST(RegionPlanTest, BalancesAndCoversRange) {
  const RegionPlan plan = RegionPlan::Build(UniformHistogram(0, 15, 10), 4, 2);
  ASSERT_EQ(plan.num_regions(), 4u);
  EXPECT_EQ(plan.halo(), HaloSlabs(2));
  EXPECT_EQ(plan.stripes().front().slab_lo, 0);
  EXPECT_EQ(plan.stripes().back().slab_hi, 15);
}

TEST(RegionPlanTest, FewerPopulatedSlabsThanRegions) {
  const RegionPlan plan = RegionPlan::Build(UniformHistogram(3, 4, 5), 7, 2);
  // Two populated slabs can fill at most two regions.
  EXPECT_LE(plan.num_regions(), 2u);
  EXPECT_GE(plan.num_regions(), 1u);
}

TEST(RegionPlanTest, NeverPlansMoreRegionsThanRequested) {
  // Skewed histograms defeat a fixed-target greedy (every stripe stops
  // short of total/num_regions, spilling the excess into extra stripes).
  // The plan caps at num_regions regardless — shard arrays are sized by
  // the request, so an overshoot here is an out-of-bounds write there.
  std::map<int64_t, uint64_t> skew;
  for (int64_t s = 0; s < 40; ++s) {
    skew[s] = (s % 7 == 0) ? 55 : 3;  // bursts just under any fixed target
  }
  for (const size_t want : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                            size_t{7}, size_t{13}}) {
    const RegionPlan plan = RegionPlan::Build(skew, want, 2);
    EXPECT_LE(plan.num_regions(), want) << "requested " << want;
    EXPECT_GE(plan.num_regions(), 1u);
    EXPECT_EQ(plan.stripes().front().slab_lo, 0);
    EXPECT_EQ(plan.stripes().back().slab_hi, 39);
  }
}

TEST(RegionPlanTest, RegionOfClampsAndIsMonotone) {
  const RegionPlan plan = RegionPlan::Build(UniformHistogram(0, 11, 10), 3, 4);
  ASSERT_EQ(plan.num_regions(), 3u);
  // Below and above the planned range clamp to the end regions.
  EXPECT_EQ(plan.RegionOf(-1000), 0u);
  EXPECT_EQ(plan.RegionOf(1000), 2u);
  size_t prev = 0;
  for (int64_t slab = -20; slab <= 20; ++slab) {
    const size_t r = plan.RegionOf(slab);
    ASSERT_LT(r, plan.num_regions());
    ASSERT_GE(r, prev) << "RegionOf must be monotone in slab";
    prev = r;
  }
}

TEST(RegionPlanTest, GapSlabsBelongToTheNextRegionUp) {
  // Populated slabs 0..3 and 10..13 with a gap between; two regions.
  std::map<int64_t, uint64_t> hist;
  for (int64_t s = 0; s <= 3; ++s) {
    hist[s] = 10;
  }
  for (int64_t s = 10; s <= 13; ++s) {
    hist[s] = 10;
  }
  const RegionPlan plan = RegionPlan::Build(hist, 2, 1);
  ASSERT_EQ(plan.num_regions(), 2u);
  for (int64_t slab = 4; slab <= 9; ++slab) {
    EXPECT_EQ(plan.RegionOf(slab), 1u) << "gap slab " << slab;
  }
}

TEST(RegionPlanTest, CoveringRegionsStartsWithHomeAndRespectsHalo) {
  const RegionPlan plan =
      RegionPlan::Build(UniformHistogram(0, 29, 10), 3, 2);  // halo = 4
  ASSERT_EQ(plan.num_regions(), 3u);
  ASSERT_EQ(plan.halo(), 4);
  for (int64_t slab = -10; slab <= 40; ++slab) {
    std::vector<size_t> covering;
    plan.CoveringRegions(slab, &covering);
    ASSERT_FALSE(covering.empty());
    EXPECT_EQ(covering.front(), plan.RegionOf(slab)) << "slab " << slab;
    // Brute-force oracle: region r covers slab iff the slab lies within
    // halo of r's owned range {s : RegionOf(s) == r} (end regions
    // extended to +/-inf).
    for (size_t r = 0; r < plan.num_regions(); ++r) {
      bool want = false;
      for (int64_t owned = slab - plan.halo(); owned <= slab + plan.halo();
           ++owned) {
        // Clamp the probe: the end regions own everything beyond the
        // planned range, which the +/-halo window already reaches.
        if (plan.RegionOf(owned) == r) {
          want = true;
          break;
        }
      }
      const bool got =
          std::find(covering.begin(), covering.end(), r) != covering.end();
      EXPECT_EQ(got, want) << "slab " << slab << " region " << r;
    }
    // No duplicates.
    std::vector<size_t> sorted = covering;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  }
}

TEST(RegionPlanTest, InteriorSlabFarFromBoundariesHasOneCoveringRegion) {
  const RegionPlan plan =
      RegionPlan::Build(UniformHistogram(0, 99, 10), 2, 2);  // halo = 4
  ASSERT_EQ(plan.num_regions(), 2u);
  std::vector<size_t> covering;
  plan.CoveringRegions(0, &covering);
  EXPECT_EQ(covering.size(), 1u);  // deep inside region 0
  covering.clear();
  plan.CoveringRegions(99, &covering);
  EXPECT_EQ(covering.size(), 1u);  // deep inside the last region
}

TEST(SlabOfCoordTest, MatchesGridFloor) {
  const double side = 2.5;
  EXPECT_EQ(SlabOfCoord(0.0, side), 0);
  EXPECT_EQ(SlabOfCoord(2.49, side), 0);
  EXPECT_EQ(SlabOfCoord(2.5, side), 1);
  EXPECT_EQ(SlabOfCoord(-0.1, side), -1);
  EXPECT_EQ(SlabOfCoord(-2.5, side), -1);
  EXPECT_EQ(SlabOfCoord(-2.51, side), -2);
}

}  // namespace
}  // namespace dbscout::grid

#include "grid/regions.h"

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout::grid {
namespace {

TEST(RegionsTest, SlabReachMatchesStencilRadius) {
  // ceil(sqrt(d)): the dim-0 extent of the neighbor stencil.
  EXPECT_EQ(SlabReach(1), 1);
  EXPECT_EQ(SlabReach(2), 2);
  EXPECT_EQ(SlabReach(4), 2);
  EXPECT_EQ(SlabReach(5), 3);
  EXPECT_EQ(SlabReach(9), 3);
}

TEST(RegionsTest, HaloSlabsIsTwoStencilReaches) {
  // The shared ghost-zone width: external spill stripes, incremental
  // slab blocks, and service detector shards all replicate this many
  // slabs of context per side.
  EXPECT_EQ(HaloSlabs(1), 2);
  EXPECT_EQ(HaloSlabs(2), 4);
  EXPECT_EQ(HaloSlabs(4), 4);
  EXPECT_EQ(HaloSlabs(5), 6);
  EXPECT_EQ(HaloSlabs(9), 6);
  for (size_t d = 1; d <= 16; ++d) {
    EXPECT_EQ(HaloSlabs(d), 2 * SlabReach(d)) << "d=" << d;
  }
}

TEST(RegionsTest, PlanStripesEmptyHistogram) {
  EXPECT_TRUE(PlanStripes({}, 100, 0).empty());
}

TEST(RegionsTest, PlanStripesSingleStripeWhenUnderTarget) {
  std::map<int64_t, uint64_t> hist{{-2, 5}, {0, 5}, {3, 5}};
  auto stripes = PlanStripes(hist, 100, 0);
  ASSERT_EQ(stripes.size(), 1u);
  EXPECT_EQ(stripes[0].slab_lo, -2);
  EXPECT_EQ(stripes[0].slab_hi, 3);
}

TEST(RegionsTest, PlanStripesSplitsAtTargetAndCoversRange) {
  std::map<int64_t, uint64_t> hist;
  for (int64_t s = 0; s < 10; ++s) {
    hist[s] = 10;
  }
  auto stripes = PlanStripes(hist, 25, 0);
  ASSERT_GE(stripes.size(), 2u);
  // Contiguous cover of the populated range.
  EXPECT_EQ(stripes.front().slab_lo, 0);
  EXPECT_EQ(stripes.back().slab_hi, 9);
  for (size_t i = 1; i < stripes.size(); ++i) {
    EXPECT_EQ(stripes[i].slab_lo, stripes[i - 1].slab_hi + 1);
  }
  // No stripe exceeds the target except by a single slab's worth.
  for (const auto& s : stripes) {
    uint64_t points = 0;
    for (int64_t slab = s.slab_lo; slab <= s.slab_hi; ++slab) {
      points += hist.count(slab) ? hist[slab] : 0;
    }
    EXPECT_LE(points, 30u);
  }
}

TEST(RegionsTest, PlanStripesNumStripesOverridesTarget) {
  std::map<int64_t, uint64_t> hist;
  for (int64_t s = 0; s < 8; ++s) {
    hist[s] = 10;
  }
  auto stripes = PlanStripes(hist, 1000, 4);
  EXPECT_EQ(stripes.size(), 4u);
}

TEST(RegionsTest, FirstStripeAtOrAfterBinarySearch) {
  std::vector<Stripe> stripes{{0, 3}, {4, 7}, {8, 11}};
  EXPECT_EQ(FirstStripeAtOrAfter(stripes, -5), 0u);
  EXPECT_EQ(FirstStripeAtOrAfter(stripes, 3), 0u);
  EXPECT_EQ(FirstStripeAtOrAfter(stripes, 4), 1u);
  EXPECT_EQ(FirstStripeAtOrAfter(stripes, 11), 2u);
  EXPECT_EQ(FirstStripeAtOrAfter(stripes, 12), 3u);
}

TEST(RegionsTest, SlabBlockFloorDivision) {
  EXPECT_EQ(SlabBlock(0, 4), 0);
  EXPECT_EQ(SlabBlock(3, 4), 0);
  EXPECT_EQ(SlabBlock(4, 4), 1);
  EXPECT_EQ(SlabBlock(-1, 4), -1);
  EXPECT_EQ(SlabBlock(-4, 4), -1);
  EXPECT_EQ(SlabBlock(-5, 4), -2);
}

TEST(RegionsTest, WaveColoringSeparatesConflictingBlocks) {
  // Same-color blocks must be >= 3 apart (write radius is +/-1 block).
  for (int64_t b = -10; b <= 10; ++b) {
    const int wave = WaveOf(b);
    ASSERT_GE(wave, 0);
    ASSERT_LT(wave, kNumWaves);
    for (int64_t other = b - 2; other <= b + 2; ++other) {
      if (other != b) {
        EXPECT_NE(WaveOf(other), wave) << "blocks " << b << ", " << other;
      }
    }
    EXPECT_EQ(WaveOf(b + 3), wave);
  }
}

}  // namespace
}  // namespace dbscout::grid

// Property sweeps for the kd-tree: across dimensionalities, sizes, and
// query types, results must match brute force exactly (up to distance ties
// in index choice).
#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "index/kdtree.h"
#include "testutil.h"

namespace dbscout::index {
namespace {

using Case = std::tuple<size_t /*dims*/, size_t /*n*/, size_t /*k*/>;

class KdTreePropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  PointSet MakePoints() const {
    const auto [dims, n, k] = GetParam();
    Rng rng(1000 + dims * 31 + n);
    // Mix of clusters and uniform background, plus duplicates.
    PointSet ps = testing::ClusteredPoints(&rng, n, dims, 3, 0.2);
    for (size_t i = 0; i < n / 20; ++i) {
      ps.Add(ps[rng.NextBounded(ps.size())]);
    }
    return ps;
  }
};

TEST_P(KdTreePropertyTest, KnnDistancesMatchBruteForce) {
  const auto [dims, n, k] = GetParam();
  const PointSet ps = MakePoints();
  const KdTree tree = KdTree::Build(ps);
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const uint32_t q = static_cast<uint32_t>(rng.NextBounded(ps.size()));
    const auto got = tree.Knn(ps[q], k, q);
    // Brute-force distances.
    std::vector<double> brute;
    for (size_t i = 0; i < ps.size(); ++i) {
      if (i != q) {
        brute.push_back(std::sqrt(PointSet::SquaredDistance(ps[i], ps[q])));
      }
    }
    std::sort(brute.begin(), brute.end());
    ASSERT_EQ(got.size(), std::min(k, brute.size()));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, brute[i], 1e-10)
          << "dims=" << dims << " q=" << q << " i=" << i;
    }
  }
}

TEST_P(KdTreePropertyTest, CountWithinMatchesBruteForceOverRadiusSweep) {
  const auto [dims, n, k] = GetParam();
  (void)k;
  const PointSet ps = MakePoints();
  const KdTree tree = KdTree::Build(ps);
  Rng rng(9);
  for (double radius : {0.1, 1.0, 5.0, 100.0}) {
    const uint32_t q = static_cast<uint32_t>(rng.NextBounded(ps.size()));
    size_t brute = 0;
    for (size_t i = 0; i < ps.size(); ++i) {
      brute += PointSet::SquaredDistance(ps[i], ps[q]) <= radius * radius;
    }
    EXPECT_EQ(tree.CountWithin(ps[q], radius), brute)
        << "dims=" << dims << " radius=" << radius;
  }
}

TEST_P(KdTreePropertyTest, KnnFromOffDataQueries) {
  const auto [dims, n, k] = GetParam();
  const PointSet ps = MakePoints();
  const KdTree tree = KdTree::Build(ps);
  Rng rng(11);
  std::vector<double> query(dims);
  for (int trial = 0; trial < 5; ++trial) {
    for (auto& c : query) {
      c = rng.Uniform(-80.0, 80.0);
    }
    const auto got = tree.Knn(query, k);
    std::vector<double> brute;
    for (size_t i = 0; i < ps.size(); ++i) {
      brute.push_back(std::sqrt(PointSet::SquaredDistance(ps[i], query)));
    }
    std::sort(brute.begin(), brute.end());
    ASSERT_EQ(got.size(), std::min(k, ps.size()));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, brute[i], 1e-10);
    }
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const auto [dims, n, k] = info.param;
  std::string name = "d";
  name += std::to_string(dims);
  name += "_n";
  name += std::to_string(n);
  name += "_k";
  name += std::to_string(k);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreePropertyTest,
    ::testing::Values(Case{1, 200, 3}, Case{2, 400, 6}, Case{3, 400, 10},
                      Case{5, 300, 6}, Case{2, 50, 60} /* k > n */),
    CaseName);

}  // namespace
}  // namespace dbscout::index

#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "testutil.h"

namespace dbscout::index {
namespace {

/// Brute-force k-NN for cross-checking.
std::vector<Neighbor> BruteKnn(const PointSet& points,
                               std::span<const double> query, size_t k,
                               int64_t exclude) {
  std::vector<Neighbor> all;
  for (size_t i = 0; i < points.size(); ++i) {
    if (static_cast<int64_t>(i) == exclude) {
      continue;
    }
    all.push_back({static_cast<uint32_t>(i),
                   std::sqrt(PointSet::SquaredDistance(points[i], query))});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  if (all.size() > k) {
    all.resize(k);
  }
  return all;
}

TEST(KdTreeTest, EmptyTree) {
  PointSet ps(2);
  const KdTree tree = KdTree::Build(ps);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Knn({(const double[]){0.0, 0.0}, 2}, 3).empty());
  EXPECT_EQ(tree.CountWithin({(const double[]){0.0, 0.0}, 2}, 1.0), 0u);
}

TEST(KdTreeTest, KnnMatchesBruteForceDistances) {
  Rng rng(31);
  const PointSet ps = testing::ClusteredPoints(&rng, 500, 3, 4, 0.2);
  const KdTree tree = KdTree::Build(ps);
  for (uint32_t q : {0u, 17u, 250u, 499u}) {
    for (size_t k : {1u, 5u, 20u}) {
      const auto got = tree.Knn(ps[q], k, q);
      const auto want = BruteKnn(ps, ps[q], k, q);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        // Indices may differ under distance ties; distances must match.
        EXPECT_NEAR(got[i].distance, want[i].distance, 1e-12)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(KdTreeTest, KnnExcludesQueryPoint) {
  PointSet ps(2);
  ps.Add({0, 0});
  ps.Add({1, 0});
  ps.Add({2, 0});
  const KdTree tree = KdTree::Build(ps);
  const auto nn = tree.Knn(ps[0], 1, 0);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].index, 1u);
  EXPECT_NEAR(nn[0].distance, 1.0, 1e-12);
}

TEST(KdTreeTest, KnnWithoutExclusionReturnsSelfFirst) {
  PointSet ps(2);
  ps.Add({0, 0});
  ps.Add({5, 5});
  const KdTree tree = KdTree::Build(ps);
  const auto nn = tree.Knn(ps[0], 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].index, 0u);
  EXPECT_NEAR(nn[0].distance, 0.0, 1e-12);
}

TEST(KdTreeTest, KnnResultsAreSortedAscending) {
  Rng rng(33);
  const PointSet ps = testing::UniformPoints(&rng, 300, 2, -5, 5);
  const KdTree tree = KdTree::Build(ps);
  const auto nn = tree.Knn(ps[0], 25, 0);
  ASSERT_EQ(nn.size(), 25u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].distance, nn[i].distance);
  }
}

TEST(KdTreeTest, KnnClampsKToAvailablePoints) {
  PointSet ps(1);
  ps.Add({1.0});
  ps.Add({2.0});
  const KdTree tree = KdTree::Build(ps);
  EXPECT_EQ(tree.Knn(ps[0], 10, 0).size(), 1u);
  EXPECT_EQ(tree.Knn(ps[0], 10).size(), 2u);
}

TEST(KdTreeTest, CountWithinMatchesBruteForce) {
  Rng rng(35);
  const PointSet ps = testing::ClusteredPoints(&rng, 400, 2, 3, 0.3);
  const KdTree tree = KdTree::Build(ps);
  for (uint32_t q : {0u, 100u, 399u}) {
    for (double radius : {0.5, 2.0, 10.0}) {
      size_t brute = 0;
      for (size_t i = 0; i < ps.size(); ++i) {
        brute += PointSet::SquaredDistance(ps[i], ps[q]) <= radius * radius;
      }
      EXPECT_EQ(tree.CountWithin(ps[q], radius), brute)
          << "q=" << q << " r=" << radius;
    }
  }
}

TEST(KdTreeTest, CountWithinHonorsCap) {
  PointSet ps(1);
  for (int i = 0; i < 100; ++i) {
    ps.Add({0.0});
  }
  const KdTree tree = KdTree::Build(ps);
  EXPECT_EQ(tree.CountWithin(ps[0], 1.0, 10), 10u);
  EXPECT_EQ(tree.CountWithin(ps[0], 1.0), 100u);
}

TEST(KdTreeTest, ForEachWithinVisitsExactSet) {
  Rng rng(37);
  const PointSet ps = testing::UniformPoints(&rng, 200, 3, -3, 3);
  const KdTree tree = KdTree::Build(ps);
  const double radius = 1.5;
  std::set<uint32_t> visited;
  tree.ForEachWithin(ps[7], radius, [&](uint32_t idx, double dist) {
    EXPECT_TRUE(visited.insert(idx).second) << "duplicate " << idx;
    EXPECT_NEAR(dist,
                std::sqrt(PointSet::SquaredDistance(ps[idx], ps[7])), 1e-12);
  });
  for (size_t i = 0; i < ps.size(); ++i) {
    const bool in_range =
        PointSet::SquaredDistance(ps[i], ps[7]) <= radius * radius;
    EXPECT_EQ(visited.count(static_cast<uint32_t>(i)) > 0, in_range);
  }
}

TEST(KdTreeTest, AllDuplicatePointsFormOneLeaf) {
  PointSet ps(2);
  for (int i = 0; i < 50; ++i) {
    ps.Add({3.0, 3.0});
  }
  const KdTree tree = KdTree::Build(ps);
  const auto nn = tree.Knn(ps[0], 5, 0);
  ASSERT_EQ(nn.size(), 5u);
  for (const auto& n : nn) {
    EXPECT_EQ(n.distance, 0.0);
  }
}

}  // namespace
}  // namespace dbscout::index

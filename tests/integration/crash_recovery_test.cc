// Crash-recovery integration test: a real dbscout_serve process is
// SIGKILLed while a client hammers it with INGEST batches, then restarted
// over the same --data-dir. Every acknowledged batch must survive the
// kill (with --wal-fsync=interval a kill -9 loses nothing: the frames
// are in the page cache even before the group fsync), the recovered
// epoch must sit on a batch boundary of the sent stream, and the
// restarted snapshot must equal DetectSequential on the recovered
// prefix — for shard counts 1 and 4, with and without a sliding-window
// TTL. The serve binary path arrives via the DBSCOUT_SERVE_BIN compile
// definition.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dbscout.h"
#include "service/client.h"
#include "testutil.h"

namespace dbscout::service {
namespace {

using core::PointKind;

std::string FreshDataDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/crash_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

core::Params TestParams() {
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 4;
  return params;
}

/// A dbscout_serve child process. Started with --port=0; the chosen port
/// is parsed from its "listening on host:port" banner.
struct ServeProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;

  void Kill() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
      pid = -1;
    }
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
  }
};

/// Forks and execs dbscout_serve with the given extra flags, waiting for
/// the listening banner. Returns a port of 0 (and a reaped pid) when the
/// process exits before binding — e.g. when crash recovery fails.
ServeProcess StartServe(const std::vector<std::string>& extra_flags) {
  int pipe_fds[2] = {-1, -1};
  EXPECT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<std::string> args = {DBSCOUT_SERVE_BIN, "--eps=1.0",
                                     "--min-pts=4", "--port=0"};
    for (const std::string& flag : extra_flags) {
      args.push_back(flag);
    }
    std::vector<char*> argv;
    for (std::string& arg : args) {
      argv.push_back(arg.data());
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ::close(pipe_fds[1]);

  ServeProcess serve;
  serve.pid = pid;
  serve.stdout_fd = pipe_fds[0];
  std::string banner;
  char buf[256];
  while (banner.find('\n') == std::string::npos) {
    const ssize_t n = ::read(pipe_fds[0], buf, sizeof(buf));
    if (n <= 0) {
      // The child died before listening (recovery failure path).
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
      serve.pid = -1;
      return serve;
    }
    banner.append(buf, static_cast<size_t>(n));
  }
  const size_t colon = banner.rfind(':', banner.find('\n'));
  if (colon != std::string::npos) {
    serve.port = static_cast<uint16_t>(
        std::strtoul(banner.c_str() + colon + 1, nullptr, 10));
  }
  EXPECT_NE(serve.port, 0) << "banner: " << banner;
  return serve;
}

std::vector<double> Flatten(const PointSet& points) {
  return points.values();
}

/// Pre-generates the batch stream: one wide plan batch, then tight
/// clusters + background noise so the labeling is non-trivial.
std::vector<PointSet> MakeBatches(Rng* rng, size_t rounds) {
  std::vector<PointSet> batches;
  batches.push_back(testing::UniformPoints(rng, 80, 2, 0.0, 10.0));
  for (size_t i = 0; i < rounds; ++i) {
    PointSet batch(2);
    const PointSet clusters = testing::ClusteredPoints(rng, 24, 2, 2, 0.2);
    for (size_t j = 0; j < clusters.size(); ++j) {
      batch.Add(clusters[j]);
    }
    const PointSet noise = testing::UniformPoints(rng, 8, 2, -1.0, 11.0);
    for (size_t j = 0; j < noise.size(); ++j) {
      batch.Add(noise[j]);
    }
    batches.push_back(batch);
  }
  return batches;
}

/// Asserts the restarted server's snapshot equals the sequential oracle
/// on the live subset of the first `epoch` sent points.
void ExpectOracleSnapshot(Client* client, const std::vector<PointSet>& sent,
                          const char* where) {
  auto stats = client->Stats("c");
  ASSERT_TRUE(stats.ok()) << where << ": " << stats.status();
  auto snapshot = client->Snapshot("c");
  ASSERT_TRUE(snapshot.ok()) << where << ": " << snapshot.status();
  ASSERT_EQ(snapshot->epoch, stats->epoch) << where;

  // Rebuild the sent prefix the recovered epoch covers.
  PointSet prefix(2);
  for (const PointSet& batch : sent) {
    if (prefix.size() >= snapshot->epoch) {
      break;
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      prefix.Add(batch[i]);
    }
  }
  ASSERT_EQ(prefix.size(), snapshot->epoch)
      << where << ": recovered epoch is not a batch boundary";

  PointSet live(2);
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (snapshot->alive[i] != 0) {
      live.Add(prefix[i]);
    }
  }
  auto oracle = core::DetectSequential(live, TestParams());
  ASSERT_TRUE(oracle.ok()) << where;
  size_t j = 0;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (snapshot->alive[i] == 0) {
      continue;
    }
    ASSERT_EQ(snapshot->kinds[i], oracle->kinds[j])
        << where << ": live point " << i;
    ++j;
  }
  EXPECT_EQ(stats->live_points, live.size()) << where;

  // A probe far from every cluster must come back an outlier.
  auto probe = client->QueryPoint("c", {1e6, 1e6}, /*want_score=*/false);
  ASSERT_TRUE(probe.ok()) << where;
  EXPECT_EQ(probe->kind, PointKind::kOutlier) << where;
}

class CrashRecoveryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CrashRecoveryTest, Kill9MidIngestLosesNoAcknowledgedData) {
  const size_t shards = GetParam();
  const std::string dir = FreshDataDir("kill_shards" +
                                       std::to_string(shards));
  const std::string shards_flag = "--shards=" + std::to_string(shards);
  const std::string dir_flag = "--data-dir=" + dir;

  Rng rng(0xdead + shards);
  const std::vector<PointSet> batches = MakeBatches(&rng, 200);

  ServeProcess serve =
      StartServe({shards_flag, dir_flag, "--wal-fsync=interval"});
  ASSERT_NE(serve.port, 0);

  // Hammer the server from one connection (so the sent order is total)
  // until the kill below severs it mid-call.
  std::atomic<size_t> acked_batches{0};
  ThreadPool hammer(1);
  hammer.Submit([&] {
    auto client = Client::Connect("127.0.0.1", serve.port);
    if (!client.ok()) {
      return;
    }
    for (const PointSet& batch : batches) {
      auto epoch = client->Ingest("c", 2, Flatten(batch));
      if (!epoch.ok()) {
        break;  // the kill severed the connection
      }
      acked_batches.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  serve.Kill();
  hammer.WaitIdle();
  const size_t acked = acked_batches.load();
  ASSERT_GT(acked, 0u) << "server died before acknowledging anything";

  uint64_t acked_epoch = 0;
  for (size_t i = 0; i < acked; ++i) {
    acked_epoch += batches[i].size();
  }

  // Restart over the same directory: every acknowledged batch must be
  // there, and the labeling must match the sequential oracle.
  ServeProcess restarted =
      StartServe({shards_flag, dir_flag, "--wal-fsync=interval"});
  ASSERT_NE(restarted.port, 0) << "crash recovery failed on restart";
  {
    auto client = Client::Connect("127.0.0.1", restarted.port);
    ASSERT_TRUE(client.ok()) << client.status();
    auto stats = client->Stats("c");
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_GE(stats->epoch, acked_epoch)
        << "acknowledged data lost across kill -9 (acked " << acked
        << " batches)";
    ExpectOracleSnapshot(&*client, batches, "after kill restart");

    // The recovered collection still takes writes.
    PointSet extra = testing::UniformPoints(&rng, 20, 2, 0.0, 10.0);
    auto epoch = client->Ingest("c", 2, Flatten(extra));
    ASSERT_TRUE(epoch.ok()) << epoch.status();
    EXPECT_EQ(*epoch, stats->epoch + extra.size());
  }
  restarted.Kill();
}

TEST_P(CrashRecoveryTest, Kill9WithSlidingWindowKeepsExpiryDurable) {
  const size_t shards = GetParam();
  const std::string dir = FreshDataDir("ttl_shards" +
                                       std::to_string(shards));
  const std::string shards_flag = "--shards=" + std::to_string(shards);
  const std::string dir_flag = "--data-dir=" + dir;

  Rng rng(0xfeed + shards);
  std::vector<PointSet> sent;

  ServeProcess serve = StartServe(
      {shards_flag, dir_flag, "--wal-fsync=interval", "--ttl-seconds=1"});
  ASSERT_NE(serve.port, 0);
  {
    auto client = Client::Connect("127.0.0.1", serve.port);
    ASSERT_TRUE(client.ok()) << client.status();
    // The plan batch ages past the 1s TTL while we wait; the server's
    // 100ms expiry ticks write its EXPIRE record well before the kill.
    sent.push_back(testing::UniformPoints(&rng, 80, 2, 0.0, 10.0));
    ASSERT_TRUE(client->Ingest("c", 2, Flatten(sent.back())).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1400));
    sent.push_back(testing::ClusteredPoints(&rng, 40, 2, 2, 0.2));
    ASSERT_TRUE(client->Ingest("c", 2, Flatten(sent.back())).ok());
    auto stats = client->Stats("c");
    ASSERT_TRUE(stats.ok()) << stats.status();
    ASSERT_EQ(stats->window_begin, sent[0].size())
        << "first batch should have expired before the kill";
  }
  serve.Kill();

  ServeProcess restarted = StartServe(
      {shards_flag, dir_flag, "--wal-fsync=interval", "--ttl-seconds=1"});
  ASSERT_NE(restarted.port, 0) << "crash recovery failed on restart";
  {
    auto client = Client::Connect("127.0.0.1", restarted.port);
    ASSERT_TRUE(client.ok()) << client.status();
    auto stats = client->Stats("c");
    ASSERT_TRUE(stats.ok()) << stats.status();
    // The window never rewinds: the expired prefix stays expired.
    EXPECT_GE(stats->window_begin, sent[0].size());
    EXPECT_EQ(stats->epoch, sent[0].size() + sent[1].size());
    ExpectOracleSnapshot(&*client, sent, "after TTL restart");
  }
  restarted.Kill();
}

INSTANTIATE_TEST_SUITE_P(Shards, CrashRecoveryTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace dbscout::service

// Cross-module integration tests: the full pipelines a user of the library
// actually runs — generate / persist / reload / detect / evaluate — and the
// cross-algorithm consistency promises the paper makes.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "analysis/compare.h"
#include "analysis/kdistance.h"
#include "analysis/metrics.h"
#include "baselines/dbscan.h"
#include "baselines/rp_dbscan.h"
#include "core/dbscout.h"
#include "data/io.h"
#include "datasets/geo.h"
#include "datasets/synthetic.h"
#include "testutil.h"

namespace dbscout {
namespace {

TEST(EndToEndTest, PersistDetectEvaluatePipeline) {
  // Generate -> save CSV -> reload -> pick eps via elbow -> detect ->
  // score against ground truth. The reloaded run must equal the in-memory
  // run exactly (CSV round-trip is lossless).
  const auto data = datasets::Blobs(2500, 0.02, 99);
  const std::string path = ::testing::TempDir() + "/e2e_points.csv";
  ASSERT_TRUE(SavePointsCsv(path, data.points).ok());
  auto reloaded = LoadPointsCsv(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  std::remove(path.c_str());

  auto curve = analysis::ComputeKDistance(*reloaded, 5);
  ASSERT_TRUE(curve.ok());
  core::Params params;
  params.eps = curve->SuggestEpsUpper();
  params.min_pts = 5;

  auto from_disk = core::Detect(*reloaded, params);
  auto from_memory = core::Detect(data.points, params);
  ASSERT_TRUE(from_disk.ok());
  ASSERT_TRUE(from_memory.ok());
  EXPECT_EQ(from_disk->outliers, from_memory->outliers);

  const auto confusion =
      analysis::ConfusionFromIndices(data.labels, from_disk->outliers);
  EXPECT_GT(confusion.F1(), 0.8);
}

TEST(EndToEndTest, BinaryFormatFeedsTheDetectorIdentically) {
  const PointSet points = datasets::OsmLike(5000, 7);
  const std::string path = ::testing::TempDir() + "/e2e_points.dbsc";
  ASSERT_TRUE(SavePointsBinary(path, points).ok());
  auto reloaded = LoadPointsBinary(path);
  ASSERT_TRUE(reloaded.ok());
  std::remove(path.c_str());
  core::Params params;
  params.eps = 5e5;
  params.min_pts = 20;
  auto a = core::DetectSequential(points, params);
  auto b = core::DetectSequential(*reloaded, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->outliers, b->outliers);
}

TEST(EndToEndTest, DbscoutDbscanAndBruteForceAgreeOnGpsWorkload) {
  // The paper's core claim chained across three implementations.
  const PointSet points = datasets::GeolifeLike(3000, 17);
  const double eps = 900.0;
  const int min_pts = 10;
  core::Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  auto dbscout_run = core::DetectSequential(points, params);
  ASSERT_TRUE(dbscout_run.ok());
  auto dbscan_run = baselines::Dbscan(points, eps, min_pts);
  ASSERT_TRUE(dbscan_run.ok());
  EXPECT_EQ(dbscout_run->outliers, dbscan_run->Noise());
  EXPECT_EQ(dbscout_run->outliers,
            testing::BruteForceOutliers(points, eps, min_pts));
}

TEST(EndToEndTest, ScaledDatasetKeepsOutlierFractionStable) {
  // Duplication-with-noise (the paper's 200%-1000% recipe) must roughly
  // preserve outlier structure: the outlier fraction stays in the same
  // ballpark after 3x duplication with jitter far below eps.
  const PointSet base = datasets::OsmLike(20000, 19);
  const PointSet tripled = datasets::ScaleWithNoise(base, 3, 1000.0, 19);
  core::Params params;
  params.eps = 5e5;
  params.min_pts = 60;
  auto base_run = core::DetectSequential(base, params);
  params.min_pts = 3 * 60;  // density tripled alongside the points
  auto tripled_run = core::DetectSequential(tripled, params);
  ASSERT_TRUE(base_run.ok());
  ASSERT_TRUE(tripled_run.ok());
  const double base_fraction =
      static_cast<double>(base_run->num_outliers()) /
      static_cast<double>(base.size());
  const double tripled_fraction =
      static_cast<double>(tripled_run->num_outliers()) /
      static_cast<double>(tripled.size());
  EXPECT_NEAR(tripled_fraction, base_fraction, 0.33 * base_fraction + 0.002);
}

TEST(EndToEndTest, RpDbscanAccuracyPipelineRunsAtOccupancyScale) {
  // Tables IV/V pipeline in miniature: exact reference vs approximate
  // candidate, diffed into TP/FP/FN that add up.
  const PointSet points = datasets::OsmLike(30000, 23);
  core::Params params;
  params.eps = 4e5;
  params.min_pts = 40;
  auto exact = core::DetectSequential(points, params);
  ASSERT_TRUE(exact.ok());
  baselines::RpDbscanParams rp;
  rp.eps = params.eps;
  rp.min_pts = params.min_pts;
  rp.rho = 0.3;
  auto approx = baselines::RpDbscan(points, rp);
  ASSERT_TRUE(approx.ok());
  const auto diff =
      analysis::CompareOutlierSets(exact->outliers, approx->outliers);
  EXPECT_EQ(diff.tp + diff.fn, exact->outliers.size());
  EXPECT_EQ(diff.tp + diff.fp, approx->outliers.size());
  // Overwhelming agreement even at coarse rho.
  EXPECT_GT(static_cast<double>(diff.tp),
            0.9 * static_cast<double>(exact->outliers.size()));
}

}  // namespace
}  // namespace dbscout

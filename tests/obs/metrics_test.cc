#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, SumsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;  // lint:allow(raw-thread) exercises wait-free cells without the pool
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.Value(), 8);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -12);
}

TEST(HistogramTest, BucketBoundsAreLogSpaced) {
  Histogram h{HistogramLayout::Count()};
  EXPECT_DOUBLE_EQ(h.BucketBound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketBound(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketBound(10), 1024.0);
  Histogram lat{HistogramLayout::Latency()};
  EXPECT_DOUBLE_EQ(lat.BucketBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(lat.BucketBound(20), 1e-6 * (1 << 20));
}

TEST(HistogramTest, ValueOnBoundaryLandsInThatBucket) {
  // Buckets are cumulative "le" (less-or-equal) buckets: a value exactly
  // equal to a bound must count toward that bound, not the next one.
  Histogram h{HistogramLayout::Count()};
  h.Observe(1.0);  // == bound of bucket 0
  h.Observe(2.0);  // == bound of bucket 1
  h.Observe(1.5);  // between: bucket 1
  const auto snap = h.Snap();
  EXPECT_EQ(snap.cumulative[0], 1u);
  EXPECT_EQ(snap.cumulative[1], 3u);
  EXPECT_EQ(snap.cumulative[2], 3u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum, 4.5, 1e-9);
}

TEST(HistogramTest, OverflowGoesToInfBucket) {
  Histogram h{HistogramLayout::Count()};
  const double top = h.BucketBound(Histogram::kNumBuckets - 1);
  h.Observe(top);          // largest finite bucket
  h.Observe(top * 4.0);    // beyond every finite bound -> +Inf only
  const auto snap = h.Snap();
  EXPECT_EQ(snap.cumulative[Histogram::kNumBuckets - 1], 1u);
  EXPECT_EQ(snap.cumulative[Histogram::kNumBuckets], 2u);
  EXPECT_EQ(snap.count, 2u);
  // The +Inf cumulative count always equals the total count.
  EXPECT_EQ(snap.cumulative.back(), snap.count);
}

TEST(HistogramTest, NegativeAndNanClampToZeroBucket) {
  Histogram h{HistogramLayout::Latency()};
  h.Observe(-5.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  const auto snap = h.Snap();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.cumulative[0], 2u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
}

TEST(HistogramTest, CumulativeCountsAreMonotone) {
  Histogram h{HistogramLayout::Latency()};
  for (int i = 0; i < 100; ++i) {
    h.Observe(1e-6 * i * i);
  }
  const auto snap = h.Snap();
  for (size_t i = 1; i < snap.cumulative.size(); ++i) {
    EXPECT_GE(snap.cumulative[i], snap.cumulative[i - 1]) << "bucket " << i;
  }
  EXPECT_EQ(snap.count, 100u);
}

TEST(QuantileTest, EmptyHistogramReturnsZero) {
  Histogram h{HistogramLayout::Count()};
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.999), 0.0);
}

TEST(QuantileTest, BucketZeroInterpolatesLinearly) {
  // Bucket 0 has no finite lower bound, so the estimate is linear in the
  // rank fraction: the q-th sample of a bucket spanning [0, bound] sits
  // at q * bound.
  Histogram h{HistogramLayout::Count()};
  for (int i = 0; i < 100; ++i) {
    h.Observe(0.5);  // all land in bucket 0 (bound 1.0)
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1.0);
}

TEST(QuantileTest, InteriorBucketInterpolatesGeometrically) {
  // All mass in bucket 2 (bounds (2, 4]): p100 hits the upper bound, p50
  // the geometric midpoint sqrt(2*4), matching the log-spaced layout.
  Histogram h{HistogramLayout::Count()};
  for (int i = 0; i < 100; ++i) {
    h.Observe(3.0);
  }
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
  EXPECT_NEAR(h.Quantile(0.5), 2.0 * std::pow(2.0, 0.5), 1e-9);
}

TEST(QuantileTest, SplitsAcrossBuckets) {
  Histogram h{HistogramLayout::Count()};
  for (int i = 0; i < 90; ++i) {
    h.Observe(0.5);  // bucket 0
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(100.0);  // bucket 7 (bounds (64, 128])
  }
  // p50 stays inside bucket 0; p99 lands in the tail bucket.
  EXPECT_LE(h.Quantile(0.5), 1.0);
  EXPECT_GT(h.Quantile(0.99), 64.0);
  EXPECT_LE(h.Quantile(0.99), 128.0);
}

TEST(QuantileTest, OverflowClampsToHighestFiniteBound) {
  // +Inf bucket has no upper bound to interpolate toward; answering the
  // largest finite bound under-reports rather than inventing a number.
  Histogram h{HistogramLayout::Count()};
  const double top = h.BucketBound(Histogram::kNumBuckets - 1);
  h.Observe(top * 8.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), top);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), top);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  Histogram h{HistogramLayout::Count()};
  h.Observe(0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
  EXPECT_DOUBLE_EQ(h.Quantile(std::numeric_limits<double>::quiet_NaN()),
                   h.Quantile(0.0));
}

TEST(QuantileTest, SingleSampleEveryQReturnsItsBucket) {
  Histogram h{HistogramLayout::Count()};
  h.Observe(1.5);  // bucket 1: (1, 2]
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    const double estimate = h.Quantile(q);
    EXPECT_GT(estimate, 1.0) << "q=" << q;
    EXPECT_LE(estimate, 2.0) << "q=" << q;
  }
}

TEST(ExemplarTest, RemembersLastTraceIdPerBucket) {
  Histogram h{HistogramLayout::Count()};
  h.ObserveWithExemplar(0.5, 0xaau);   // bucket 0
  h.ObserveWithExemplar(0.7, 0xbbu);   // bucket 0 again: last writer wins
  h.ObserveWithExemplar(100.0, 0xccu); // bucket 7
  const auto snap = h.Snap();
  EXPECT_EQ(snap.exemplar_ids[0], 0xbbu);
  EXPECT_DOUBLE_EQ(snap.exemplar_values[0], 0.7);
  EXPECT_EQ(snap.exemplar_ids[7], 0xccu);
  EXPECT_EQ(snap.exemplar_ids[1], 0u);  // untouched bucket: no exemplar
}

TEST(ExemplarTest, IdZeroRecordsCountButNoExemplar) {
  Histogram h{HistogramLayout::Count()};
  h.ObserveWithExemplar(0.5, 0);
  const auto snap = h.Snap();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.exemplar_ids[0], 0u);
}

TEST(ExemplarTest, ExposeAppendsOpenMetricsExemplar) {
  Registry registry;
  Histogram* h = registry.GetHistogram("dbscout_exemplar_seconds", "h",
                                       HistogramLayout::Latency());
  h->ObserveWithExemplar(0.5e-6, 0x1234u);
  const std::string text = registry.Expose();
  EXPECT_NE(text.find("dbscout_exemplar_seconds_bucket{le=\"1e-06\"} 1 "
                      "# {trace_id=\"0000000000001234\"} 5e-07"),
            std::string::npos)
      << text;
}

TEST(RegistryTest, SameNameAndLabelsYieldSamePointer) {
  Registry registry;
  Counter* a = registry.GetCounter("dbscout_test_total", "help");
  Counter* b = registry.GetCounter("dbscout_test_total", "other help");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("dbscout_test_total", "help", {{"k", "v"}});
  EXPECT_NE(a, labeled);
  // Label order is normalized: {a,b} and {b,a} are one series.
  Counter* x = registry.GetCounter("dbscout_multi_total", "h",
                                   {{"a", "1"}, {"b", "2"}});
  Counter* y = registry.GetCounter("dbscout_multi_total", "h",
                                   {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(x, y);
}

TEST(RegistryTest, SnapshotCarriesValues) {
  Registry registry;
  registry.GetCounter("zz_counter_total", "c")->Increment(7);
  registry.GetGauge("aa_gauge", "g")->Set(-3);
  registry.GetHistogram("mm_hist_seconds", "h")->Observe(0.5);
  const auto families = registry.Snapshot();
  ASSERT_EQ(families.size(), 3u);
  // Families are sorted by name.
  EXPECT_EQ(families[0].name, "aa_gauge");
  EXPECT_EQ(families[1].name, "mm_hist_seconds");
  EXPECT_EQ(families[2].name, "zz_counter_total");
  EXPECT_EQ(families[0].type, Registry::Type::kGauge);
  EXPECT_EQ(families[0].series.at(0).gauge, -3);
  EXPECT_EQ(families[1].type, Registry::Type::kHistogram);
  EXPECT_EQ(families[1].series.at(0).histogram.count, 1u);
  EXPECT_EQ(families[2].type, Registry::Type::kCounter);
  EXPECT_EQ(families[2].series.at(0).counter, 7u);
}

TEST(RegistryTest, ExposePrometheusTextFormat) {
  Registry registry;
  registry.GetCounter("dbscout_requests_total", "Total requests",
                      {{"verb", "query"}})
      ->Increment(5);
  registry.GetGauge("dbscout_sessions", "Open sessions")->Set(2);
  const std::string text = registry.Expose();
  EXPECT_NE(text.find("# HELP dbscout_requests_total Total requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dbscout_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbscout_requests_total{verb=\"query\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dbscout_sessions gauge\n"), std::string::npos);
  EXPECT_NE(text.find("dbscout_sessions 2\n"), std::string::npos);
  // Scrapes end with a newline (Prometheus exposition requirement).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(RegistryTest, ExposeExpandsHistograms) {
  Registry registry;
  Histogram* h = registry.GetHistogram(
      "dbscout_latency_seconds", "Latency", HistogramLayout::Latency());
  h->Observe(1e-6);  // first bucket
  h->Observe(1e9);   // +Inf
  const std::string text = registry.Expose();
  EXPECT_NE(text.find("# TYPE dbscout_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbscout_latency_seconds_bucket{le=\"1e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbscout_latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbscout_latency_seconds_count 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbscout_latency_seconds_sum"), std::string::npos);
}

TEST(RegistryTest, ExposeEscapesLabelValues) {
  Registry registry;
  registry.GetCounter("dbscout_esc_total", "h",
                      {{"path", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.Expose();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(RegistryTest, GlobalIsStable) {
  Registry& a = Registry::Global();
  Registry& b = Registry::Global();
  EXPECT_EQ(&a, &b);
}

TEST(RegistryDeathTest, RejectsInvalidMetricName) {
  Registry registry;
  EXPECT_DEATH(registry.GetCounter("bad name!", "h"), "bad metric name");
}

TEST(RegistryDeathTest, RejectsTypeMismatch) {
  Registry registry;
  registry.GetCounter("dbscout_thing_total", "h");
  EXPECT_DEATH(registry.GetGauge("dbscout_thing_total", "h"),
               "different type");
}

}  // namespace
}  // namespace dbscout::obs

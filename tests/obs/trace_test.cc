#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "common/rng.h"
#include "core/dbscout.h"
#include "core/phases/phase_kernels.h"
#include "data/io.h"
#include "external/external_detector.h"
#include "testutil.h"

namespace dbscout::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker + trace-event extractor. Enough of
// RFC 8259 to validate what TraceCollector emits (and to reject anything a
// trace viewer would choke on); not a general-purpose parser.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !std::isxdigit(s_[pos_ + i])) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(s_[pos_]) || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Validate();
}

// Extracts the quoted value of `"key":"..."` occurrences per event object
// (the serializer emits one flat object per span, no nesting of these keys).
std::vector<std::string> ExtractStringField(const std::string& json,
                                            const std::string& key) {
  std::vector<std::string> values;
  const std::string needle = "\"" + key + "\":\"";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    const size_t end = json.find('"', pos);
    if (end == std::string::npos) {
      break;
    }
    values.push_back(json.substr(pos, end - pos));
    pos = end + 1;
  }
  return values;
}

// ---------------------------------------------------------------------------

TEST(TraceCollectorTest, StartsEmpty) {
  TraceCollector trace;
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_TRUE(trace.Spans().empty());
  const std::string json = trace.ToChromeJson();
  EXPECT_EQ(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
  EXPECT_TRUE(IsValidJson(json));
}

TEST(TraceCollectorTest, AddSpanEndingNowFillsFields) {
  TraceCollector trace;
  trace.AddSpanEndingNow("core_points", "sequential", 0.001, 123, 456);
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "core_points");
  EXPECT_EQ(spans[0].cat, "sequential");
  EXPECT_DOUBLE_EQ(spans[0].duration_seconds, 0.001);
  EXPECT_GE(spans[0].start_seconds, 0.0);
  EXPECT_EQ(spans[0].distance_computations, 123u);
  EXPECT_EQ(spans[0].records, 456u);
}

TEST(TraceCollectorTest, NegativeDurationClampsToZero) {
  TraceCollector trace;
  trace.AddSpanEndingNow("p", "c", -1.0, 0, 0);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.Spans()[0].duration_seconds, 0.0);
  EXPECT_GE(trace.Spans()[0].start_seconds, 0.0);
}

TEST(TraceCollectorTest, ChromeJsonSchema) {
  TraceCollector trace;
  TraceSpan span;
  span.name = "grid";
  span.cat = "external";
  span.start_seconds = 0.0025;
  span.duration_seconds = 0.0015;
  span.thread_id = 3;
  span.distance_computations = 42;
  span.records = 7;
  trace.AddSpan(span);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"grid\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"external\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"distance_computations\":42"), std::string::npos);
  EXPECT_NE(json.find("\"records\":7"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TraceCollectorTest, EscapesSpanNames) {
  TraceCollector trace;
  trace.AddSpanEndingNow("ph\"ase\\1\n", "c\tat", 0.0, 0, 0);
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("ph\\\"ase\\\\1\\n"), std::string::npos);
}

TEST(TraceCollectorTest, WriteChromeJsonRoundTrips) {
  TraceCollector trace;
  trace.AddSpanEndingNow("outliers", "shared_memory", 0.002, 9, 10);
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.json";
  ASSERT_TRUE(trace.WriteChromeJson(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), trace.ToChromeJson());
}

TEST(TraceCollectorTest, WriteToBadPathFails) {
  TraceCollector trace;
  EXPECT_FALSE(
      trace.WriteChromeJson("/nonexistent-dir/definitely/not/here.json").ok());
}

// ---------------------------------------------------------------------------
// End-to-end: `dbscout detect --trace-out=FILE` must write Perfetto-loadable
// trace-event JSON with one span per recorded phase per engine. Sequential
// records each canonical phase exactly once; the parallel engine adds
// per-worker task spans on top; the external engine records phases once per
// stripe.

constexpr std::string_view kCanonicalPhases[] = {
    core::phases::kPhaseGrid, core::phases::kPhaseDenseCellMap,
    core::phases::kPhaseCorePoints, core::phases::kPhaseCoreCellMap,
    core::phases::kPhaseOutliers};

std::string WriteDetectInput() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/trace_detect_input.bin";
    Rng rng(7);
    const PointSet points =
        testing::ClusteredPoints(&rng, 800, 2, 3, /*noise_fraction=*/0.05);
    auto status = SavePointsBinary(p, points);
    EXPECT_TRUE(status.ok()) << status;
    return p;
  }();
  return path;
}

// Runs `dbscout detect --engine=<engine> --trace-out=<file>` and returns the
// written JSON text.
std::string DetectWithTrace(const std::string& engine,
                            const std::string& trace_path) {
  const std::vector<std::string> args = {
      "detect",           "--input=" + WriteDetectInput(),
      "--eps=0.4",        "--min-pts=6",
      "--engine=" + engine, "--trace-out=" + trace_path};
  std::vector<const char*> argv = {"dbscout"};
  for (const auto& arg : args) {
    argv.push_back(arg.c_str());
  }
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      cli::RunCli(static_cast<int>(argv.size()), argv.data(), out, err);
  EXPECT_EQ(code, 0) << err.str();
  std::ifstream in(trace_path);
  EXPECT_TRUE(in.good()) << "trace file missing: " << trace_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Spans of `json` as (cat, name) pairs (the serializer emits name then cat
// per event, in that order).
std::vector<std::pair<std::string, std::string>> SpanCatNames(
    const std::string& json) {
  const auto names = ExtractStringField(json, "name");
  const auto cats = ExtractStringField(json, "cat");
  EXPECT_EQ(names.size(), cats.size());
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = 0; i < names.size() && i < cats.size(); ++i) {
    out.emplace_back(cats[i], names[i]);
  }
  return out;
}

size_t CountSpans(const std::vector<std::pair<std::string, std::string>>& spans,
                  std::string_view cat, std::string_view name) {
  return std::count(spans.begin(), spans.end(),
                    std::make_pair(std::string(cat), std::string(name)));
}

TEST(DetectTraceOutTest, SequentialEmitsOneSpanPerPhase) {
  const std::string json = DetectWithTrace(
      "sequential", ::testing::TempDir() + "/trace_seq.json");
  ASSERT_TRUE(IsValidJson(json)) << json;
  const auto spans = SpanCatNames(json);
  for (std::string_view phase : kCanonicalPhases) {
    EXPECT_EQ(CountSpans(spans, core::phases::kEngineSequential, phase), 1u)
        << phase;
  }
  EXPECT_EQ(spans.size(), std::size(kCanonicalPhases));
}

TEST(DetectTraceOutTest, ParallelEmitsPhaseAndWorkerTaskSpans) {
  const std::string json = DetectWithTrace(
      "parallel", ::testing::TempDir() + "/trace_par.json");
  ASSERT_TRUE(IsValidJson(json)) << json;
  const auto spans = SpanCatNames(json);
  for (std::string_view phase : kCanonicalPhases) {
    EXPECT_EQ(CountSpans(spans, core::phases::kEngineParallel, phase), 1u)
        << phase;
  }
  // The dataflow layer adds per-partition task spans on top of the phase
  // spans (one per partition per stage, from the worker that ran it).
  EXPECT_GT(spans.size(), std::size(kCanonicalPhases));
}

TEST(DetectTraceOutTest, ExternalEmitsSpansPerStripePhase) {
  const std::string json = DetectWithTrace(
      "external", ::testing::TempDir() + "/trace_ext.json");
  ASSERT_TRUE(IsValidJson(json)) << json;
  const auto spans = SpanCatNames(json);
  for (std::string_view phase : kCanonicalPhases) {
    EXPECT_GE(CountSpans(spans, core::phases::kEngineExternal, phase), 1u)
        << phase;
  }
}

TEST(DetectTraceOutTest, SharedMemoryEmitsOneSpanPerPhase) {
  const std::string json = DetectWithTrace(
      "shared", ::testing::TempDir() + "/trace_shared.json");
  ASSERT_TRUE(IsValidJson(json)) << json;
  const auto spans = SpanCatNames(json);
  for (std::string_view phase : kCanonicalPhases) {
    EXPECT_EQ(CountSpans(spans, core::phases::kEngineSharedMemory, phase), 1u)
        << phase;
  }
}

TEST(TraceCollectorTest, ConcurrentAddsAllLand) {
  TraceCollector trace;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;  // lint:allow(raw-thread) collector must accept foreign threads
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kPerThread; ++i) {
        trace.AddSpanEndingNow("span", "stress", 1e-6, 1, 1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(trace.size(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(IsValidJson(trace.ToChromeJson()));
}

// ---------------------------------------------------------------------------
// Ring-buffer mode and request-scoped spans (trace ids, scopes, filters).

TEST(TraceRingTest, WrapsOverwritingOldestAndCountsDropped) {
  TraceCollector trace(4);
  EXPECT_EQ(trace.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    char name[8];
    std::snprintf(name, sizeof(name), "s%d", i);
    trace.AddSpanEndingNow(name, "ring", 1e-6, 0, 0);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 2u);
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first unwind: s0 and s1 were overwritten.
  EXPECT_EQ(spans[0].name, "s2");
  EXPECT_EQ(spans[3].name, "s5");
}

TEST(TraceRingTest, ExactlyFullDoesNotDrop) {
  TraceCollector trace(3);
  for (int i = 0; i < 3; ++i) {
    trace.AddSpanEndingNow("s", "ring", 0.0, 0, 0);
  }
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRingTest, UnboundedNeverDrops) {
  TraceCollector trace;  // capacity 0 = unbounded
  for (int i = 0; i < 100; ++i) {
    trace.AddSpanEndingNow("s", "ring", 0.0, 0, 0);
  }
  EXPECT_EQ(trace.size(), 100u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TracedSpanTest, CarriesTraceIdAndScope) {
  TraceCollector trace;
  trace.AddTracedSpan("wal_commit", "storage", 0xabcdef0123456789ull, "orders",
                      0.002, 17);
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "wal_commit");
  EXPECT_EQ(spans[0].cat, "storage");
  EXPECT_EQ(spans[0].trace_id, 0xabcdef0123456789ull);
  EXPECT_EQ(spans[0].scope, "orders");
  EXPECT_DOUBLE_EQ(spans[0].duration_seconds, 0.002);
  EXPECT_EQ(spans[0].records, 17u);
  // The id shows up as a fixed-width hex string in the JSON args, so
  // Perfetto queries and grep treat it as one opaque token.
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"trace_id\":\"abcdef0123456789\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"scope\":\"orders\""), std::string::npos);
}

TEST(TraceFilterTest, SelectsByScopeNameIdAndLimit) {
  TraceCollector trace;
  trace.AddTracedSpan("queue_wait", "service", 0x11ull, "a", 0.001);
  trace.AddTracedSpan("shard_apply", "shard", 0x11ull, "a", 0.001);
  trace.AddTracedSpan("queue_wait", "service", 0x22ull, "b", 0.001);
  trace.AddSpanEndingNow("core_points", "sequential", 0.001, 0, 0);

  TraceFilter by_scope;
  by_scope.scope = "a";
  std::string json = trace.ToChromeJson(by_scope);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_EQ(ExtractStringField(json, "name").size(), 2u);
  EXPECT_EQ(json.find("\"scope\":\"b\""), std::string::npos);

  TraceFilter by_name;
  by_name.name = "queue_wait";
  json = trace.ToChromeJson(by_name);
  EXPECT_EQ(ExtractStringField(json, "name").size(), 2u);
  EXPECT_EQ(json.find("shard_apply"), std::string::npos);

  // `name` also matches the category, so one filter can select a layer.
  TraceFilter by_cat;
  by_cat.name = "service";
  json = trace.ToChromeJson(by_cat);
  EXPECT_EQ(ExtractStringField(json, "name").size(), 2u);

  TraceFilter by_id;
  by_id.trace_id = 0x22ull;
  json = trace.ToChromeJson(by_id);
  const auto names = ExtractStringField(json, "name");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "queue_wait");
  EXPECT_NE(json.find("\"trace_id\":\"0000000000000022\""), std::string::npos);

  TraceFilter by_limit;
  by_limit.limit = 1;
  json = trace.ToChromeJson(by_limit);
  const auto last = ExtractStringField(json, "name");
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0], "core_points");  // most recent span wins

  // Filters compose: scope AND name must both match.
  TraceFilter both;
  both.scope = "a";
  both.name = "shard_apply";
  json = trace.ToChromeJson(both);
  EXPECT_EQ(ExtractStringField(json, "name").size(), 1u);
}

TEST(TraceFilterTest, DefaultFilterKeepsEverything) {
  TraceCollector trace;
  trace.AddTracedSpan("a", "c", 1, "s", 0.0);
  trace.AddSpanEndingNow("b", "c", 0.0, 0, 0);
  EXPECT_EQ(trace.ToChromeJson(TraceFilter{}), trace.ToChromeJson());
}

TEST(TracedSpanTest, UntracedSpansOmitTraceArgs) {
  TraceCollector trace;
  trace.AddSpanEndingNow("core_points", "sequential", 0.001, 1, 2);
  const std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.find("trace_id"), std::string::npos) << json;
  EXPECT_EQ(json.find("scope"), std::string::npos) << json;
}

}  // namespace
}  // namespace dbscout::obs

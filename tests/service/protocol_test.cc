#include "service/protocol.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout::service {
namespace {

using core::PointKind;

TEST(ProtocolTest, IngestRequestRoundTrip) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = "sensors";
  request.dims = 3;
  request.coords = {1.0, 2.0, 3.0, -4.5, 0.0, 1e-9};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kIngest);
  EXPECT_EQ(decoded->collection, "sensors");
  EXPECT_EQ(decoded->dims, 3);
  EXPECT_EQ(decoded->coords, request.coords);
}

TEST(ProtocolTest, QueryByIdRequestRoundTrip) {
  Request request;
  request.verb = Verb::kQuery;
  request.collection = "c";
  request.query_by_id = true;
  request.query_id = 123456;
  request.want_score = true;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kQuery);
  EXPECT_TRUE(decoded->query_by_id);
  EXPECT_EQ(decoded->query_id, 123456u);
  EXPECT_TRUE(decoded->want_score);
}

TEST(ProtocolTest, ProbeQueryRequestRoundTrip) {
  Request request;
  request.verb = Verb::kQuery;
  request.collection = "c";
  request.query_by_id = false;
  request.query_point = {0.25, -0.75};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->query_by_id);
  EXPECT_EQ(decoded->query_point, request.query_point);
  EXPECT_FALSE(decoded->want_score);
}

TEST(ProtocolTest, StatsAndSnapshotRequestsRoundTrip) {
  for (Verb verb : {Verb::kStats, Verb::kSnapshot, Verb::kMetrics}) {
    Request request;
    request.verb = verb;
    request.collection = "x";
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->verb, verb);
    EXPECT_EQ(decoded->collection, "x");
  }
}

TEST(ProtocolTest, MetricsRequestAllowsEmptyCollection) {
  // METRICS scrapes the whole service; no collection is required.
  Request request;
  request.verb = Verb::kMetrics;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kMetrics);
  EXPECT_TRUE(decoded->collection.empty());
}

TEST(ProtocolTest, IngestResponseRoundTrip) {
  Response response;
  response.verb = Verb::kIngest;
  response.epoch = 77;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->epoch, 77u);
}

TEST(ProtocolTest, QueryResponseRoundTrip) {
  Response response;
  response.verb = Verb::kQuery;
  response.query.kind = PointKind::kBorder;
  response.query.epoch = 42;
  response.query.has_score = true;
  response.query.score = 1.25;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->query.kind, PointKind::kBorder);
  EXPECT_EQ(decoded->query.epoch, 42u);
  ASSERT_TRUE(decoded->query.has_score);
  EXPECT_EQ(decoded->query.score, 1.25);
}

TEST(ProtocolTest, StatsResponseRoundTrip) {
  Response response;
  response.verb = Verb::kStats;
  response.stats.epoch = 10;
  response.stats.num_points = 10;
  response.stats.num_core = 6;
  response.stats.num_cells = 4;
  response.stats.num_outliers = 2;
  response.stats.admission_rejections = 3;
  response.stats.uptime_seconds = 12.75;
  response.stats.phases = {{"apply", 0.5, 1000, 10}, {"query", 0.25, 12, 2}};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.epoch, 10u);
  EXPECT_EQ(decoded->stats.num_core, 6u);
  EXPECT_EQ(decoded->stats.num_outliers, 2u);
  EXPECT_EQ(decoded->stats.admission_rejections, 3u);
  EXPECT_EQ(decoded->stats.uptime_seconds, 12.75);
  EXPECT_EQ(decoded->stats.phases, response.stats.phases);
}

TEST(ProtocolTest, MetricsResponseRoundTrip) {
  Response response;
  response.verb = Verb::kMetrics;
  response.metrics.text =
      "# HELP dbscout_x_total x\n# TYPE dbscout_x_total counter\n"
      "dbscout_x_total 5\n";
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->metrics.text, response.metrics.text);
}

TEST(ProtocolTest, EmptyMetricsResponseRoundTrip) {
  Response response;
  response.verb = Verb::kMetrics;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->metrics.text.empty());
}

TEST(ProtocolTest, SnapshotResponseRoundTrip) {
  Response response;
  response.verb = Verb::kSnapshot;
  response.snapshot.epoch = 3;
  response.snapshot.num_core = 1;
  response.snapshot.num_cells = 2;
  response.snapshot.kinds = {PointKind::kCore, PointKind::kBorder,
                             PointKind::kOutlier};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->snapshot.epoch, 3u);
  EXPECT_EQ(decoded->snapshot.kinds, response.snapshot.kinds);
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
  Response response;
  response.verb = Verb::kIngest;
  response.status = Status::Unavailable("queue full");
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded->status.message(), "queue full");
}

TEST(ProtocolTest, RejectsUnknownVerb) {
  Request request;
  request.verb = Verb::kStats;
  request.collection = "c";
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes[0] = 99;
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(ProtocolTest, RejectsTruncatedFrames) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = "sensors";
  request.dims = 2;
  request.coords = {1.0, 2.0};
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  // Every proper prefix must be rejected, never read out of bounds.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeRequest({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, RejectsTruncatedResponses) {
  // Every proper prefix of every response shape must be rejected cleanly —
  // including through the newer STATS uptime_seconds field and the METRICS
  // text payload.
  std::vector<Response> responses;
  {
    Response r;
    r.verb = Verb::kStats;
    r.stats.epoch = 1;
    r.stats.num_points = 2;
    r.stats.uptime_seconds = 3.5;
    r.stats.phases = {{"apply", 0.5, 1000, 10}};
    responses.push_back(std::move(r));
  }
  {
    Response r;
    r.verb = Verb::kMetrics;
    r.metrics.text = "dbscout_x_total 5\n";
    responses.push_back(std::move(r));
  }
  {
    Response r;
    r.verb = Verb::kQuery;
    r.query.kind = PointKind::kCore;
    r.query.has_score = true;
    r.query.score = 0.5;
    responses.push_back(std::move(r));
  }
  for (const Response& response : responses) {
    const std::vector<uint8_t> bytes = EncodeResponse(response);
    for (size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok())
          << "verb " << static_cast<int>(response.verb) << " len " << len;
    }
    auto full = DecodeResponse(bytes);
    EXPECT_TRUE(full.ok()) << full.status();
  }
}

TEST(ProtocolTest, RejectsTrailingBytes) {
  Request request;
  request.verb = Verb::kStats;
  request.collection = "c";
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes.push_back(0);
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(ProtocolTest, RejectsLyingCountsWithoutOverflow) {
  // An INGEST header claiming ~500M points backed by no bytes must fail
  // cleanly (the count*dims multiplication must not be trusted).
  std::vector<uint8_t> bytes;
  bytes.push_back(static_cast<uint8_t>(Verb::kIngest));
  bytes.push_back(0);                      // flags
  bytes.push_back(1);                      // name len lo
  bytes.push_back(0);                      // name len hi
  bytes.push_back('c');                    // name
  bytes.push_back(8);                      // dims lo
  bytes.push_back(0);                      // dims hi
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(0xFF);                 // count = 2^32-1
  }
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(ProtocolTest, ConfigureRequestRoundTripAndTruncation) {
  Request request;
  request.verb = Verb::kConfigure;
  request.collection = "window";
  request.ttl_seconds = 37.5;
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  auto decoded = DecodeRequest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kConfigure);
  EXPECT_EQ(decoded->collection, "window");
  EXPECT_EQ(decoded->ttl_seconds, 37.5);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeRequest({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, ConfigureResponseRoundTripAndTruncation) {
  Response response;
  response.verb = Verb::kConfigure;
  response.configure.ttl_seconds = 12.25;
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  auto decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->configure.ttl_seconds, 12.25);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, StatsWindowFieldsRoundTrip) {
  Response response;
  response.verb = Verb::kStats;
  response.stats.epoch = 100;
  response.stats.num_points = 100;
  response.stats.live_points = 60;
  response.stats.window_begin = 40;
  response.stats.queue_depth = 7;
  response.stats.ttl_seconds = 300.0;
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  auto decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.live_points, 60u);
  EXPECT_EQ(decoded->stats.window_begin, 40u);
  EXPECT_EQ(decoded->stats.queue_depth, 7u);
  EXPECT_EQ(decoded->stats.ttl_seconds, 300.0);
  // Truncation through the window fields must fail cleanly.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, StatsShardRowsRoundTrip) {
  Response response;
  response.verb = Verb::kStats;
  response.stats.epoch = 50;
  response.stats.num_points = 50;
  response.stats.shards = 4;
  response.stats.shard_rows = {{0, 20, 18, 0},
                               {1, 15, 15, 1},
                               {2, 12, 10, 0},
                               {3, 9, 7, 0}};
  response.stats.phases = {{"apply", 0.5, 1000, 50}};
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  auto decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.shards, 4u);
  EXPECT_EQ(decoded->stats.shard_rows, response.stats.shard_rows);
  EXPECT_EQ(decoded->stats.phases, response.stats.phases);
  // Truncation through the per-shard block (and everything after it) must
  // fail cleanly for every proper prefix.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, StatsDefaultShardFieldsRoundTrip) {
  // An unsharded service reports shards=1 and may omit the rows entirely;
  // the block must survive the round trip as-is.
  Response response;
  response.verb = Verb::kStats;
  response.stats.epoch = 3;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.shards, 1u);
  EXPECT_TRUE(decoded->stats.shard_rows.empty());
}

TEST(ProtocolTest, SnapshotAliveMaskRoundTrip) {
  Response response;
  response.verb = Verb::kSnapshot;
  response.snapshot.epoch = 4;
  response.snapshot.num_core = 1;
  response.snapshot.kinds = {PointKind::kCore, PointKind::kBorder,
                             PointKind::kOutlier, PointKind::kOutlier};
  response.snapshot.alive = {1, 0, 1, 0};
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  auto decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->snapshot.kinds, response.snapshot.kinds);
  EXPECT_EQ(decoded->snapshot.alive, response.snapshot.alive);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, RejectsBadAliveByteInSnapshot) {
  Response response;
  response.verb = Verb::kSnapshot;
  response.snapshot.epoch = 1;
  response.snapshot.kinds = {PointKind::kCore};
  response.snapshot.alive = {1};
  std::vector<uint8_t> bytes = EncodeResponse(response);
  bytes.back() = 2;  // alive mask entries must be 0 or 1
  EXPECT_FALSE(DecodeResponse(bytes).ok());
}

TEST(ProtocolTest, RejectsBadPointKindInResponse) {
  Response response;
  response.verb = Verb::kSnapshot;
  response.snapshot.epoch = 1;
  response.snapshot.kinds = {PointKind::kCore};
  std::vector<uint8_t> bytes = EncodeResponse(response);
  bytes.back() = 7;  // invalid PointKind
  EXPECT_FALSE(DecodeResponse(bytes).ok());
}

// ---------------------------------------------------------------------------
// Trace header (optional RequestContext riding on the verb byte's high
// bit) and the TRACE/HEALTH verbs.

TEST(TraceHeaderTest, RequestRoundTripsContext) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = "sensors";
  request.dims = 2;
  request.coords = {1.0, 2.0};
  request.context.trace_id = 0xfeedfacecafebeefull;
  request.context.origin_seconds = 1723180000.25;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->context, request.context);
  EXPECT_EQ(decoded->coords, request.coords);
}

TEST(TraceHeaderTest, UntracedRequestIsByteIdenticalToPreTraceEncoding) {
  // The compat contract: a request without a context must encode exactly
  // as it did before the header existed — no flag bit, no extra bytes —
  // so old servers keep decoding new clients.
  Request request;
  request.verb = Verb::kStats;
  request.collection = "c";
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  EXPECT_EQ(bytes[0], static_cast<uint8_t>(Verb::kStats));
  EXPECT_EQ(bytes[0] & kTraceHeaderFlag, 0);
  auto decoded = DecodeRequest(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->context.trace_id, 0u);

  Request traced = request;
  traced.context.trace_id = 1;
  const std::vector<uint8_t> traced_bytes = EncodeRequest(traced);
  // The header costs exactly u64 + f64 and sets only the flag bit.
  EXPECT_EQ(traced_bytes.size(), bytes.size() + 16);
  EXPECT_EQ(traced_bytes[0], bytes[0] | kTraceHeaderFlag);
}

TEST(TraceHeaderTest, FlaggedFrameLooksLikeUnknownVerbToOldDecoders) {
  // A pre-trace decoder sees verb byte 0x81 and rejects it as an unknown
  // verb. We can't run the old decoder, but we can pin the wire fact it
  // relies on: the flagged byte is outside the verb range.
  Request request;
  request.verb = Verb::kIngest;
  request.collection = "c";
  request.dims = 1;
  request.coords = {1.0};
  request.context.trace_id = 42;
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  EXPECT_GT(bytes[0], static_cast<uint8_t>(Verb::kHealth));
}

TEST(TraceHeaderTest, RejectsFlagWithZeroTraceId) {
  // trace_id 0 means "no context"; a flagged header carrying it is a
  // frame error, not a silent downgrade.
  Request request;
  request.verb = Verb::kStats;
  request.collection = "c";
  request.context.trace_id = 7;
  std::vector<uint8_t> bytes = EncodeRequest(request);
  // Zero out the 8 trace-id bytes right after the verb byte.
  for (size_t i = 1; i <= 8; ++i) {
    bytes[i] = 0;
  }
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(TraceHeaderTest, RejectsTruncatedHeaderEverywhere) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = "sensors";
  request.dims = 2;
  request.coords = {1.0, 2.0};
  request.context.trace_id = 0x1234;
  request.context.origin_seconds = 99.5;
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeRequest({bytes.data(), len}).ok()) << "len " << len;
  }
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeRequest(trailing).ok());
}

TEST(TraceHeaderTest, ResponseRoundTripsTraceIdAndServerSeconds) {
  Response response;
  response.verb = Verb::kIngest;
  response.epoch = 9;
  response.trace_id = 0xdeadbeefull;
  response.server_seconds = 0.0125;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trace_id, 0xdeadbeefull);
  EXPECT_DOUBLE_EQ(decoded->server_seconds, 0.0125);

  // Untraced responses omit the header entirely (old-client compat).
  Response plain;
  plain.verb = Verb::kIngest;
  plain.epoch = 9;
  const std::vector<uint8_t> plain_bytes = EncodeResponse(plain);
  EXPECT_EQ(plain_bytes[0] & kTraceHeaderFlag, 0);
  EXPECT_EQ(EncodeResponse(response).size(), plain_bytes.size() + 16);
}

TEST(TraceHeaderTest, TruncatedTracedResponsesRejected) {
  Response response;
  response.verb = Verb::kQuery;
  response.trace_id = 5;
  response.server_seconds = 1.0;
  response.query.kind = PointKind::kCore;
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(TraceVerbTest, RequestRoundTripsFilters) {
  Request request;
  request.verb = Verb::kTrace;
  request.collection = "orders";  // doubles as the scope filter
  request.trace_name_filter = "wal_commit";
  request.trace_id_filter = 0x77ull;
  request.trace_limit = 128;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kTrace);
  EXPECT_EQ(decoded->collection, "orders");
  EXPECT_EQ(decoded->trace_name_filter, "wal_commit");
  EXPECT_EQ(decoded->trace_id_filter, 0x77ull);
  EXPECT_EQ(decoded->trace_limit, 128u);
}

TEST(TraceVerbTest, EmptyFilterAllowsNoCollection) {
  Request request;
  request.verb = Verb::kTrace;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->collection.empty());
  EXPECT_EQ(decoded->trace_id_filter, 0u);
}

TEST(TraceVerbTest, ResponseRoundTripsJsonAndCounters) {
  Response response;
  response.verb = Verb::kTrace;
  response.trace.json = "{\"traceEvents\":[]}";
  response.trace.spans_retained = 3;
  response.trace.spans_dropped = 11;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trace.json, response.trace.json);
  EXPECT_EQ(decoded->trace.spans_retained, 3u);
  EXPECT_EQ(decoded->trace.spans_dropped, 11u);

  const std::vector<uint8_t> bytes = EncodeResponse(response);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(HealthVerbTest, RequestRoundTrips) {
  Request request;
  request.verb = Verb::kHealth;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kHealth);
}

TEST(HealthVerbTest, ResponseRoundTripsAllFields) {
  Response response;
  response.verb = Verb::kHealth;
  response.health.state = HealthState::kDegraded;
  response.health.recovery = RecoveryState::kDone;
  response.health.reason = "wal commit failures";
  response.health.collections = 4;
  response.health.rss_bytes = 123456789;
  response.health.open_fds = 42;
  response.health.threads = 17;
  response.health.uptime_seconds = 3600.5;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->health.state, HealthState::kDegraded);
  EXPECT_EQ(decoded->health.recovery, RecoveryState::kDone);
  EXPECT_EQ(decoded->health.reason, "wal commit failures");
  EXPECT_EQ(decoded->health.collections, 4u);
  EXPECT_EQ(decoded->health.rss_bytes, 123456789u);
  EXPECT_EQ(decoded->health.open_fds, 42u);
  EXPECT_EQ(decoded->health.threads, 17u);
  EXPECT_DOUBLE_EQ(decoded->health.uptime_seconds, 3600.5);

  const std::vector<uint8_t> bytes = EncodeResponse(response);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(HealthVerbTest, RejectsBadStateBytes) {
  Response response;
  response.verb = Verb::kHealth;
  response.health.state = HealthState::kReady;
  response.health.recovery = RecoveryState::kNone;
  std::vector<uint8_t> bytes = EncodeResponse(response);
  // Layout: verb byte, status code, then the state and recovery enums;
  // out-of-range enum values must be rejected, not cast.
  std::vector<uint8_t> bad_state = bytes;
  bad_state[2] = 9;
  EXPECT_FALSE(DecodeResponse(bad_state).ok());
  std::vector<uint8_t> bad_recovery = bytes;
  bad_recovery[3] = 9;
  EXPECT_FALSE(DecodeResponse(bad_recovery).ok());
}

TEST(TraceIdGeneratorTest, NonzeroAndDistinct) {
  const uint64_t a = NextTraceId();
  const uint64_t b = NextTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dbscout::service

#include "service/protocol.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout::service {
namespace {

using core::PointKind;

TEST(ProtocolTest, IngestRequestRoundTrip) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = "sensors";
  request.dims = 3;
  request.coords = {1.0, 2.0, 3.0, -4.5, 0.0, 1e-9};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kIngest);
  EXPECT_EQ(decoded->collection, "sensors");
  EXPECT_EQ(decoded->dims, 3);
  EXPECT_EQ(decoded->coords, request.coords);
}

TEST(ProtocolTest, QueryByIdRequestRoundTrip) {
  Request request;
  request.verb = Verb::kQuery;
  request.collection = "c";
  request.query_by_id = true;
  request.query_id = 123456;
  request.want_score = true;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kQuery);
  EXPECT_TRUE(decoded->query_by_id);
  EXPECT_EQ(decoded->query_id, 123456u);
  EXPECT_TRUE(decoded->want_score);
}

TEST(ProtocolTest, ProbeQueryRequestRoundTrip) {
  Request request;
  request.verb = Verb::kQuery;
  request.collection = "c";
  request.query_by_id = false;
  request.query_point = {0.25, -0.75};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->query_by_id);
  EXPECT_EQ(decoded->query_point, request.query_point);
  EXPECT_FALSE(decoded->want_score);
}

TEST(ProtocolTest, StatsAndSnapshotRequestsRoundTrip) {
  for (Verb verb : {Verb::kStats, Verb::kSnapshot, Verb::kMetrics}) {
    Request request;
    request.verb = verb;
    request.collection = "x";
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->verb, verb);
    EXPECT_EQ(decoded->collection, "x");
  }
}

TEST(ProtocolTest, MetricsRequestAllowsEmptyCollection) {
  // METRICS scrapes the whole service; no collection is required.
  Request request;
  request.verb = Verb::kMetrics;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kMetrics);
  EXPECT_TRUE(decoded->collection.empty());
}

TEST(ProtocolTest, IngestResponseRoundTrip) {
  Response response;
  response.verb = Verb::kIngest;
  response.epoch = 77;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->epoch, 77u);
}

TEST(ProtocolTest, QueryResponseRoundTrip) {
  Response response;
  response.verb = Verb::kQuery;
  response.query.kind = PointKind::kBorder;
  response.query.epoch = 42;
  response.query.has_score = true;
  response.query.score = 1.25;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->query.kind, PointKind::kBorder);
  EXPECT_EQ(decoded->query.epoch, 42u);
  ASSERT_TRUE(decoded->query.has_score);
  EXPECT_EQ(decoded->query.score, 1.25);
}

TEST(ProtocolTest, StatsResponseRoundTrip) {
  Response response;
  response.verb = Verb::kStats;
  response.stats.epoch = 10;
  response.stats.num_points = 10;
  response.stats.num_core = 6;
  response.stats.num_cells = 4;
  response.stats.num_outliers = 2;
  response.stats.admission_rejections = 3;
  response.stats.uptime_seconds = 12.75;
  response.stats.phases = {{"apply", 0.5, 1000, 10}, {"query", 0.25, 12, 2}};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.epoch, 10u);
  EXPECT_EQ(decoded->stats.num_core, 6u);
  EXPECT_EQ(decoded->stats.num_outliers, 2u);
  EXPECT_EQ(decoded->stats.admission_rejections, 3u);
  EXPECT_EQ(decoded->stats.uptime_seconds, 12.75);
  EXPECT_EQ(decoded->stats.phases, response.stats.phases);
}

TEST(ProtocolTest, MetricsResponseRoundTrip) {
  Response response;
  response.verb = Verb::kMetrics;
  response.metrics.text =
      "# HELP dbscout_x_total x\n# TYPE dbscout_x_total counter\n"
      "dbscout_x_total 5\n";
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->metrics.text, response.metrics.text);
}

TEST(ProtocolTest, EmptyMetricsResponseRoundTrip) {
  Response response;
  response.verb = Verb::kMetrics;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->metrics.text.empty());
}

TEST(ProtocolTest, SnapshotResponseRoundTrip) {
  Response response;
  response.verb = Verb::kSnapshot;
  response.snapshot.epoch = 3;
  response.snapshot.num_core = 1;
  response.snapshot.num_cells = 2;
  response.snapshot.kinds = {PointKind::kCore, PointKind::kBorder,
                             PointKind::kOutlier};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->snapshot.epoch, 3u);
  EXPECT_EQ(decoded->snapshot.kinds, response.snapshot.kinds);
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
  Response response;
  response.verb = Verb::kIngest;
  response.status = Status::Unavailable("queue full");
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded->status.message(), "queue full");
}

TEST(ProtocolTest, RejectsUnknownVerb) {
  Request request;
  request.verb = Verb::kStats;
  request.collection = "c";
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes[0] = 99;
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(ProtocolTest, RejectsTruncatedFrames) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = "sensors";
  request.dims = 2;
  request.coords = {1.0, 2.0};
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  // Every proper prefix must be rejected, never read out of bounds.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeRequest({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, RejectsTruncatedResponses) {
  // Every proper prefix of every response shape must be rejected cleanly —
  // including through the newer STATS uptime_seconds field and the METRICS
  // text payload.
  std::vector<Response> responses;
  {
    Response r;
    r.verb = Verb::kStats;
    r.stats.epoch = 1;
    r.stats.num_points = 2;
    r.stats.uptime_seconds = 3.5;
    r.stats.phases = {{"apply", 0.5, 1000, 10}};
    responses.push_back(std::move(r));
  }
  {
    Response r;
    r.verb = Verb::kMetrics;
    r.metrics.text = "dbscout_x_total 5\n";
    responses.push_back(std::move(r));
  }
  {
    Response r;
    r.verb = Verb::kQuery;
    r.query.kind = PointKind::kCore;
    r.query.has_score = true;
    r.query.score = 0.5;
    responses.push_back(std::move(r));
  }
  for (const Response& response : responses) {
    const std::vector<uint8_t> bytes = EncodeResponse(response);
    for (size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok())
          << "verb " << static_cast<int>(response.verb) << " len " << len;
    }
    auto full = DecodeResponse(bytes);
    EXPECT_TRUE(full.ok()) << full.status();
  }
}

TEST(ProtocolTest, RejectsTrailingBytes) {
  Request request;
  request.verb = Verb::kStats;
  request.collection = "c";
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes.push_back(0);
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(ProtocolTest, RejectsLyingCountsWithoutOverflow) {
  // An INGEST header claiming ~500M points backed by no bytes must fail
  // cleanly (the count*dims multiplication must not be trusted).
  std::vector<uint8_t> bytes;
  bytes.push_back(static_cast<uint8_t>(Verb::kIngest));
  bytes.push_back(0);                      // flags
  bytes.push_back(1);                      // name len lo
  bytes.push_back(0);                      // name len hi
  bytes.push_back('c');                    // name
  bytes.push_back(8);                      // dims lo
  bytes.push_back(0);                      // dims hi
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(0xFF);                 // count = 2^32-1
  }
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(ProtocolTest, ConfigureRequestRoundTripAndTruncation) {
  Request request;
  request.verb = Verb::kConfigure;
  request.collection = "window";
  request.ttl_seconds = 37.5;
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  auto decoded = DecodeRequest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kConfigure);
  EXPECT_EQ(decoded->collection, "window");
  EXPECT_EQ(decoded->ttl_seconds, 37.5);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeRequest({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, ConfigureResponseRoundTripAndTruncation) {
  Response response;
  response.verb = Verb::kConfigure;
  response.configure.ttl_seconds = 12.25;
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  auto decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->configure.ttl_seconds, 12.25);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, StatsWindowFieldsRoundTrip) {
  Response response;
  response.verb = Verb::kStats;
  response.stats.epoch = 100;
  response.stats.num_points = 100;
  response.stats.live_points = 60;
  response.stats.window_begin = 40;
  response.stats.queue_depth = 7;
  response.stats.ttl_seconds = 300.0;
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  auto decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.live_points, 60u);
  EXPECT_EQ(decoded->stats.window_begin, 40u);
  EXPECT_EQ(decoded->stats.queue_depth, 7u);
  EXPECT_EQ(decoded->stats.ttl_seconds, 300.0);
  // Truncation through the window fields must fail cleanly.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, StatsShardRowsRoundTrip) {
  Response response;
  response.verb = Verb::kStats;
  response.stats.epoch = 50;
  response.stats.num_points = 50;
  response.stats.shards = 4;
  response.stats.shard_rows = {{0, 20, 18, 0},
                               {1, 15, 15, 1},
                               {2, 12, 10, 0},
                               {3, 9, 7, 0}};
  response.stats.phases = {{"apply", 0.5, 1000, 50}};
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  auto decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.shards, 4u);
  EXPECT_EQ(decoded->stats.shard_rows, response.stats.shard_rows);
  EXPECT_EQ(decoded->stats.phases, response.stats.phases);
  // Truncation through the per-shard block (and everything after it) must
  // fail cleanly for every proper prefix.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, StatsDefaultShardFieldsRoundTrip) {
  // An unsharded service reports shards=1 and may omit the rows entirely;
  // the block must survive the round trip as-is.
  Response response;
  response.verb = Verb::kStats;
  response.stats.epoch = 3;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.shards, 1u);
  EXPECT_TRUE(decoded->stats.shard_rows.empty());
}

TEST(ProtocolTest, SnapshotAliveMaskRoundTrip) {
  Response response;
  response.verb = Verb::kSnapshot;
  response.snapshot.epoch = 4;
  response.snapshot.num_core = 1;
  response.snapshot.kinds = {PointKind::kCore, PointKind::kBorder,
                             PointKind::kOutlier, PointKind::kOutlier};
  response.snapshot.alive = {1, 0, 1, 0};
  const std::vector<uint8_t> bytes = EncodeResponse(response);
  auto decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->snapshot.kinds, response.snapshot.kinds);
  EXPECT_EQ(decoded->snapshot.alive, response.snapshot.alive);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeResponse({bytes.data(), len}).ok()) << "len " << len;
  }
}

TEST(ProtocolTest, RejectsBadAliveByteInSnapshot) {
  Response response;
  response.verb = Verb::kSnapshot;
  response.snapshot.epoch = 1;
  response.snapshot.kinds = {PointKind::kCore};
  response.snapshot.alive = {1};
  std::vector<uint8_t> bytes = EncodeResponse(response);
  bytes.back() = 2;  // alive mask entries must be 0 or 1
  EXPECT_FALSE(DecodeResponse(bytes).ok());
}

TEST(ProtocolTest, RejectsBadPointKindInResponse) {
  Response response;
  response.verb = Verb::kSnapshot;
  response.snapshot.epoch = 1;
  response.snapshot.kinds = {PointKind::kCore};
  std::vector<uint8_t> bytes = EncodeResponse(response);
  bytes.back() = 7;  // invalid PointKind
  EXPECT_FALSE(DecodeResponse(bytes).ok());
}

}  // namespace
}  // namespace dbscout::service

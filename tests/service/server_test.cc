#include "service/server.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dbscout.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/client.h"
#include "testutil.h"

namespace dbscout::service {
namespace {

using core::PointKind;

ServiceOptions MakeOptions(double eps, int min_pts) {
  ServiceOptions options;
  options.params.eps = eps;
  options.params.min_pts = min_pts;
  return options;
}

ServiceOptions MakeTracedOptions(double eps, int min_pts,
                                 obs::TraceCollector* trace,
                                 obs::Registry* registry) {
  ServiceOptions options = MakeOptions(eps, min_pts);
  options.trace = trace;
  options.registry = registry;
  return options;
}

std::vector<double> Flatten(const PointSet& points) {
  std::vector<double> coords(points.values());
  return coords;
}

TEST(ServerTest, EndToEndOverTcpMatchesSequentialOracle) {
  Rng rng(20260808);
  const PointSet points = testing::ClusteredPoints(&rng, 400, 2, 2, 0.2);
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 5;
  auto expected = core::DetectSequential(points, params);
  ASSERT_TRUE(expected.ok());

  DetectionService service(MakeOptions(params.eps, params.min_pts));
  auto server = Server::Start(&service, ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_NE((*server)->port(), 0);

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status();

  auto epoch = client->Ingest("tcp", 2, Flatten(points));
  ASSERT_TRUE(epoch.ok()) << epoch.status();
  EXPECT_EQ(*epoch, points.size());

  auto snapshot = client->Snapshot("tcp");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->epoch, points.size());
  EXPECT_EQ(snapshot->kinds, expected->kinds);

  auto stats = client->Stats("tcp");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_points, points.size());
  EXPECT_EQ(stats->num_outliers, expected->outliers.size());

  // Spot-check queries in both modes.
  for (uint32_t i = 0; i < points.size(); i += 37) {
    auto by_id = client->QueryId("tcp", i, /*want_score=*/false);
    ASSERT_TRUE(by_id.ok());
    EXPECT_EQ(by_id->kind, expected->kinds[i]);
  }
  auto probe = client->QueryPoint("tcp", {1e6, 1e6}, /*want_score=*/false);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->kind, PointKind::kOutlier);

  // Service-level errors travel the wire as statuses, not dead sockets.
  auto missing = client->Stats("no-such-collection");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The connection is still healthy afterwards.
  ASSERT_TRUE(client->Stats("tcp").ok());
}

TEST(ServerTest, SessionCapShedsExtraConnections) {
  DetectionService service(MakeOptions(1.0, 3));
  ServerOptions options;
  options.max_sessions = 2;
  auto server = Server::Start(&service, options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto c1 = Client::Connect("127.0.0.1", (*server)->port());
  auto c2 = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // Make both sessions live so their slots are definitely occupied.
  ASSERT_TRUE(c1->Ingest("a", 1, {0.0}).ok());
  ASSERT_TRUE(c2->Ingest("a", 1, {0.25}).ok());

  auto c3 = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(c3.ok());  // TCP connects; the server closes it on accept
  auto refused = c3->Stats("a");
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ((*server)->sessions_shed(), 1u);

  // Dropping a client frees the slot for new sessions.
  c1 = Status::Internal("dropped");
  auto c4 = [&] {
    // The slot only frees once the server notices the closed session
    // (within one 100ms poll tick); retry briefly.
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto candidate = Client::Connect("127.0.0.1", (*server)->port());
      if (candidate.ok()) {
        auto stats = candidate->Stats("a");
        if (stats.ok()) {
          return Result<Client>(std::move(*candidate));
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return Result<Client>(Status::Internal("no free slot"));
  }();
  ASSERT_TRUE(c4.ok()) << c4.status();
}

TEST(ServerTest, MalformedFrameGetsErrorResponseThenDisconnect) {
  DetectionService service(MakeOptions(1.0, 3));
  auto server = Server::Start(&service, ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  // A frame whose payload is a single unknown verb byte.
  Request bogus;
  bogus.verb = static_cast<Verb>(99);
  bogus.collection = "c";
  auto response = client->Call(bogus);
  // The server answers with the decode error before closing.
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  // Then the connection is gone.
  EXPECT_FALSE(client->Stats("c").ok());
}

TEST(ServerTest, StopIsIdempotentAndServiceSurvives) {
  DetectionService service(MakeOptions(1.0, 2));
  auto server = Server::Start(&service, ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ingest("c", 1, {0.0, 0.4}).ok());
  (*server)->Stop();
  (*server)->Stop();
  // The service keeps its state after the front-end is gone.
  Request request;
  request.verb = Verb::kSnapshot;
  request.collection = "c";
  EXPECT_EQ(service.Dispatch(request).snapshot.epoch, 2u);
}

TEST(ServerTest, TracedClientRoundTripsIdAndServerAddsWireSpans) {
  obs::TraceCollector trace;
  obs::Registry registry;
  DetectionService service(MakeTracedOptions(1.0, 4, &trace, &registry));
  auto server = Server::Start(&service, ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status();

  client->EnableTracing();
  auto epoch = client->Ingest("t", 2, {0.0, 0.0, 0.1, 0.1});
  ASSERT_TRUE(epoch.ok()) << epoch.status();
  const uint64_t id = client->last_trace_id();
  ASSERT_NE(id, 0u);  // stamped by the client, echoed by the server

  // The TCP layer contributes wire spans under the same id as the
  // service-side spans — one connected trace across both layers.
  bool decode = false, encode = false, root = false;
  for (const auto& span : trace.Spans()) {
    if (span.trace_id != id) {
      continue;
    }
    decode |= span.name == "frame_decode";
    encode |= span.name == "reply_encode";
    root |= span.name == "ingest";
  }
  EXPECT_TRUE(decode);
  EXPECT_TRUE(encode);
  EXPECT_TRUE(root);

  // The TRACE verb fetches exactly this request's spans over the wire.
  auto dump = client->TraceDump("", "", id, 0);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_NE(dump->json.find("\"name\":\"frame_decode\""), std::string::npos);
  EXPECT_EQ(dump->spans_dropped, 0u);

  (*server)->Stop();
  service.Stop();
}

TEST(ServerTest, UntracedClientNeverSeesTraceHeader) {
  obs::TraceCollector trace;
  obs::Registry registry;
  DetectionService service(MakeTracedOptions(1.0, 4, &trace, &registry));
  auto server = Server::Start(&service, ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  // No EnableTracing: the server self-stamps internally (its ring still
  // collects spans) but the response must not echo an id the client never
  // sent — that is the old-client compatibility contract.
  auto epoch = client->Ingest("t", 2, {0.0, 0.0, 0.1, 0.1});
  ASSERT_TRUE(epoch.ok()) << epoch.status();
  EXPECT_EQ(client->last_trace_id(), 0u);
  EXPECT_GT(trace.size(), 0u);

  auto health = client->Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->state, HealthState::kReady);

  (*server)->Stop();
  service.Stop();
}

}  // namespace
}  // namespace dbscout::service

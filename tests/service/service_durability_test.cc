// Restart-equality tests for the durability subsystem: a DetectionService
// with a data_dir is stopped (destroyed) and reconstructed over the same
// directory, and the recovered collection must publish exactly the
// labeling DetectSequential computes on the live points — for shard
// counts 1 and 4, with and without a sliding-window TTL, across explicit
// compactions, and through a CONFIGURE change. Epochs never rewind across
// a restart, and a corrupt WAL frame must surface as a recovery error
// rather than load corrupt points.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dbscout.h"
#include "obs/metrics.h"
#include "service/handle.h"
#include "service/service.h"
#include "storage/wal.h"
#include "testutil.h"

namespace dbscout::service {
namespace {

using core::PointKind;

Request IngestRequest(const std::string& collection, uint16_t dims,
                      std::vector<double> coords) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = collection;
  request.dims = dims;
  request.coords = std::move(coords);
  return request;
}

Request SnapshotRequest(const std::string& collection) {
  Request request;
  request.verb = Verb::kSnapshot;
  request.collection = collection;
  return request;
}

Request StatsRequest(const std::string& collection) {
  Request request;
  request.verb = Verb::kStats;
  request.collection = collection;
  return request;
}

Request ConfigureRequest(const std::string& collection, double ttl) {
  Request request;
  request.verb = Verb::kConfigure;
  request.collection = collection;
  request.ttl_seconds = ttl;
  return request;
}

/// A fresh durability root under the test temp dir.
std::string FreshDataDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/durability_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

core::Params TestParams() {
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 4;
  return params;
}

/// Asserts the collection's published snapshot equals DetectSequential on
/// its live points, and that STATS agrees on the live count.
void ExpectMatchesOracle(ServiceHandle* handle, const std::string& name,
                         const PointSet& ingested,
                         const core::Params& params, const char* where) {
  auto snapshot = handle->Call(SnapshotRequest(name));
  ASSERT_TRUE(snapshot.ok()) << where;
  ASSERT_TRUE(snapshot->status.ok()) << where << ": " << snapshot->status;
  const SnapshotAnswer& snap = snapshot->snapshot;
  ASSERT_EQ(snap.epoch, ingested.size()) << where;

  PointSet live(ingested.dims());
  for (size_t i = 0; i < ingested.size(); ++i) {
    if (snap.alive[i] != 0) {
      live.Add(ingested[i]);
    }
  }
  auto oracle = core::DetectSequential(live, params);
  ASSERT_TRUE(oracle.ok()) << where;
  size_t j = 0;
  for (size_t i = 0; i < ingested.size(); ++i) {
    if (snap.alive[i] == 0) {
      continue;
    }
    ASSERT_EQ(snap.kinds[i], oracle->kinds[j])
        << where << ": live point " << i << " (oracle index " << j << ")";
    ++j;
  }
  ASSERT_EQ(j, live.size()) << where;

  auto stats = handle->Call(StatsRequest(name));
  ASSERT_TRUE(stats.ok() && stats->status.ok()) << where;
  EXPECT_EQ(stats->stats.live_points, live.size()) << where;
}

/// One durable service run: build → hand control to `body` → destroy (the
/// destructor stops the apply loop and closes every store, syncing the
/// WAL tail).
struct DurableRun {
  explicit DurableRun(ServiceOptions options)
      : service(std::move(options)), handle(&service) {}
  DetectionService service;
  ServiceHandle handle;
};

ServiceOptions DurableOptions(const std::string& data_dir, size_t shards,
                              obs::Registry* registry,
                              std::atomic<double>* clock) {
  ServiceOptions options;
  options.params = TestParams();
  options.num_shards = shards;
  options.data_dir = data_dir;
  options.registry = registry;
  if (clock != nullptr) {
    options.clock = [clock] { return clock->load(); };
  }
  return options;
}

/// Ingests `batch` through the handle, appending to the oracle's record.
void Ingest(ServiceHandle* handle, PointSet* ingested,
            const PointSet& batch) {
  std::vector<double> coords;
  for (size_t i = 0; i < batch.size(); ++i) {
    for (double v : batch[i]) {
      coords.push_back(v);
    }
    ingested->Add(batch[i]);
  }
  auto response = handle->Call(
      IngestRequest("c", static_cast<uint16_t>(batch.dims()),
                    std::move(coords)));
  ASSERT_TRUE(response.ok() && response->status.ok())
      << (response.ok() ? response->status : response.status());
  ASSERT_EQ(response->epoch, ingested->size());
}

class DurabilityShardedTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DurabilityShardedTest, RestartPreservesOutlierSetAndEpoch) {
  const size_t shards = GetParam();
  const std::string dir = FreshDataDir(
      "restart_shards" + std::to_string(shards));
  const size_t dims = 2;
  Rng rng(0x5eed0 + shards);
  PointSet ingested(dims);
  uint64_t epoch_before = 0;

  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, shards, &registry, nullptr));
    ASSERT_TRUE(run.service.recovery_status().ok());
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 100, dims, 0.0, 10.0));
    Ingest(&run.handle, &ingested,
           testing::ClusteredPoints(&rng, 60, dims, 3, 0.2));
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 30, dims, -1.0, 11.0));
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "before restart");
    epoch_before = ingested.size();
  }

  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, shards, &registry, nullptr));
    ASSERT_TRUE(run.service.recovery_status().ok())
        << run.service.recovery_status();
    auto stats = run.handle.Call(StatsRequest("c"));
    ASSERT_TRUE(stats.ok() && stats->status.ok());
    // The epoch never rewinds across a restart: every acknowledged id is
    // still assigned.
    EXPECT_EQ(stats->stats.epoch, epoch_before);
    EXPECT_EQ(stats->stats.shards, shards);
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "after restart");

    // The recovered collection keeps accepting ingest, with ids continuing
    // where the previous process stopped.
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 40, dims, 0.0, 10.0));
    EXPECT_GT(ingested.size(), epoch_before);
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "after post-restart ingest");
  }

  // A third incarnation sees the union of both previous runs.
  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, shards, &registry, nullptr));
    ASSERT_TRUE(run.service.recovery_status().ok());
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "after second restart");
  }
}

TEST_P(DurabilityShardedTest, RestartPreservesSlidingWindow) {
  const size_t shards = GetParam();
  const std::string dir = FreshDataDir(
      "ttl_shards" + std::to_string(shards));
  const size_t dims = 2;
  Rng rng(0x7777 + shards);
  PointSet ingested(dims);
  std::atomic<double> now{0.0};
  uint64_t window_before = 0;

  {
    obs::Registry registry;
    ServiceOptions options = DurableOptions(dir, shards, &registry, &now);
    options.ttl_seconds = 5.0;
    DurableRun run(options);
    ASSERT_TRUE(run.service.recovery_status().ok());
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 80, dims, 0.0, 10.0));
    now.store(2.0);
    Ingest(&run.handle, &ingested,
           testing::ClusteredPoints(&rng, 50, dims, 2, 0.2));
    // t=6: the first batch (stamped 0, TTL 5) ages out; the second stays.
    now.store(6.0);
    run.service.SweepExpiredNow();
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "after sweep");
    auto stats = run.handle.Call(StatsRequest("c"));
    ASSERT_TRUE(stats.ok() && stats->status.ok());
    window_before = stats->stats.window_begin;
    ASSERT_EQ(window_before, 80u);
  }

  {
    obs::Registry registry;
    ServiceOptions options = DurableOptions(dir, shards, &registry, &now);
    options.ttl_seconds = 5.0;
    DurableRun run(options);
    ASSERT_TRUE(run.service.recovery_status().ok())
        << run.service.recovery_status();
    auto stats = run.handle.Call(StatsRequest("c"));
    ASSERT_TRUE(stats.ok() && stats->status.ok());
    // The expired prefix stays expired; the window never rewinds either.
    EXPECT_EQ(stats->stats.window_begin, window_before);
    EXPECT_DOUBLE_EQ(stats->stats.ttl_seconds, 5.0);
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "after TTL restart");

    // Recovered points are re-stamped at recovery time (they live one more
    // full TTL from the restart, never less): advancing past now + TTL
    // drains the window completely.
    now.store(now.load() + 6.0);
    run.service.SweepExpiredNow();
    auto drained = run.handle.Call(StatsRequest("c"));
    ASSERT_TRUE(drained.ok() && drained->status.ok());
    EXPECT_EQ(drained->stats.live_points, 0u);
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "after drain");
  }
}

TEST_P(DurabilityShardedTest, CompactionThenRestartMatchesOracle) {
  const size_t shards = GetParam();
  const std::string dir = FreshDataDir(
      "compact_shards" + std::to_string(shards));
  const size_t dims = 2;
  Rng rng(0xc0de + shards);
  PointSet ingested(dims);

  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, shards, &registry, nullptr));
    ASSERT_TRUE(run.service.recovery_status().ok());
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 90, dims, 0.0, 10.0));
    // Fold the log so far into a snapshot; later records land in a fresh
    // WAL suffix, so recovery exercises snapshot + suffix together.
    ASSERT_TRUE(run.service.CompactNow().ok());
    Ingest(&run.handle, &ingested,
           testing::ClusteredPoints(&rng, 45, dims, 3, 0.15));
    ASSERT_TRUE(run.service.CompactNow().ok());
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 25, dims, -1.0, 11.0));
  }

  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, shards, &registry, nullptr));
    ASSERT_TRUE(run.service.recovery_status().ok())
        << run.service.recovery_status();
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "after compacted restart");
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, DurabilityShardedTest,
                         ::testing::Values(1, 4));

TEST(DurabilityTest, ConfigurePersistsAcrossRestart) {
  const std::string dir = FreshDataDir("configure");
  const size_t dims = 2;
  Rng rng(0xbeef);
  PointSet ingested(dims);

  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, 1, &registry, nullptr));
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 40, dims, 0.0, 8.0));
    auto configured = run.handle.Call(ConfigureRequest("c", 3.5));
    ASSERT_TRUE(configured.ok() && configured->status.ok());
    EXPECT_DOUBLE_EQ(configured->configure.ttl_seconds, 3.5);
  }

  obs::Registry registry;
  DurableRun run(DurableOptions(dir, 1, &registry, nullptr));
  ASSERT_TRUE(run.service.recovery_status().ok());
  auto stats = run.handle.Call(StatsRequest("c"));
  ASSERT_TRUE(stats.ok() && stats->status.ok());
  EXPECT_DOUBLE_EQ(stats->stats.ttl_seconds, 3.5);
}

TEST(DurabilityTest, AutoCompactionUnderTinySegmentsStaysExact) {
  const std::string dir = FreshDataDir("autocompact");
  const size_t dims = 2;
  Rng rng(0xaaaa);
  PointSet ingested(dims);

  {
    obs::Registry registry;
    ServiceOptions options = DurableOptions(dir, 1, &registry, nullptr);
    // Every commit overflows a 512-byte segment, so compaction runs
    // constantly and the restart below recovers almost entirely from
    // snapshots.
    options.snapshot_interval_bytes = 512;
    DurableRun run(options);
    for (int round = 0; round < 6; ++round) {
      Ingest(&run.handle, &ingested,
             testing::UniformPoints(&rng, 20, dims, 0.0, 10.0));
    }
    ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                        "before restart");
  }

  obs::Registry registry;
  DurableRun run(DurableOptions(dir, 1, &registry, nullptr));
  ASSERT_TRUE(run.service.recovery_status().ok())
      << run.service.recovery_status();
  ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                      "after restart");
}

TEST(DurabilityTest, RestartWithMoreShardsAdoptsRecordedPlan) {
  const std::string dir = FreshDataDir("upshard");
  const size_t dims = 2;
  Rng rng(0x1111);
  PointSet ingested(dims);

  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, 1, &registry, nullptr));
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 80, dims, 0.0, 10.0));
  }

  // One region fits in four shards: the recorded plan is adopted as-is,
  // so the sharded replay reproduces the single-shard labeling exactly.
  obs::Registry registry;
  DurableRun run(DurableOptions(dir, 4, &registry, nullptr));
  ASSERT_TRUE(run.service.recovery_status().ok())
      << run.service.recovery_status();
  ExpectMatchesOracle(&run.handle, "c", ingested, TestParams(),
                      "after upshard restart");
}

TEST(DurabilityTest, RestartWithTooFewShardsFailsWithGuidance) {
  const std::string dir = FreshDataDir("downshard");
  const size_t dims = 2;
  Rng rng(0x2222);
  PointSet ingested(dims);

  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, 4, &registry, nullptr));
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 120, dims, 0.0, 12.0));
    auto stats = run.handle.Call(StatsRequest("c"));
    ASSERT_TRUE(stats.ok() && stats->status.ok());
    // The plan actually spread across several regions (otherwise the
    // restart below would legitimately succeed).
    ASSERT_GT(stats->stats.shard_rows.size(), 1u);
  }

  obs::Registry registry;
  DurableRun run(DurableOptions(dir, 1, &registry, nullptr));
  EXPECT_FALSE(run.service.recovery_status().ok());
  EXPECT_NE(run.service.recovery_status().message().find("--shards"),
            std::string::npos)
      << run.service.recovery_status();
}

TEST(DurabilityTest, CorruptWalFrameFailsRecovery) {
  const std::string dir = FreshDataDir("corrupt");
  const size_t dims = 2;
  Rng rng(0x3333);
  PointSet ingested(dims);

  {
    obs::Registry registry;
    DurableRun run(DurableOptions(dir, 1, &registry, nullptr));
    Ingest(&run.handle, &ingested,
           testing::UniformPoints(&rng, 50, dims, 0.0, 10.0));
  }

  // Flip one payload byte of the first frame (the CREATE record): a
  // complete frame with a bad CRC is a hard error — recovery must refuse
  // the directory rather than load corrupt points.
  const std::string wal = dir + "/c/wal-000001.log";
  ASSERT_TRUE(std::filesystem::exists(wal));
  {
    std::fstream file(wal, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(storage::kWalHeaderBytes) + 8);
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(storage::kWalHeaderBytes) + 8);
    file.put(static_cast<char>(byte ^ 0x01));
  }

  obs::Registry registry;
  DurableRun run(DurableOptions(dir, 1, &registry, nullptr));
  EXPECT_FALSE(run.service.recovery_status().ok());
}

}  // namespace
}  // namespace dbscout::service

// Observability contract of the detection service: one stamped INGEST on
// a sharded durable collection must come back as one *connected* trace —
// every layer's span (admission queue wait, per-shard apply, ghost
// exchange, WAL group commit, snapshot publish) carrying the same trace
// id — plus the slow-request log, the HEALTH verb's readiness semantics
// across deferred crash recovery, the TRACE verb's filtered dumps, and
// the latency-quantile rows in STATS.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/handle.h"
#include "service/service.h"
#include "testutil.h"

namespace dbscout::service {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON well-formedness checker (same contract
// as the one in tests/obs/trace_test.cc): enough of RFC 8259 to reject
// anything a trace viewer would choke on.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Container('{', '}', /*object=*/true);
      case '[':
        return Container('[', ']', /*object=*/false);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Container(char open, char close, bool object) {
    ++pos_;  // consume `open`
    (void)open;
    SkipWs();
    if (Peek() == close) {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (object) {
        if (!String()) {
          return false;
        }
        SkipWs();
        if (Peek() != ':') {
          return false;
        }
        ++pos_;
        SkipWs();
      }
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !std::isxdigit(s_[pos_ + i])) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(s_[pos_]) || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Validate();
}

// ---------------------------------------------------------------------------

Request IngestRequest(const std::string& collection, uint16_t dims,
                      std::vector<double> coords, uint64_t trace_id = 0) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = collection;
  request.dims = dims;
  request.coords = std::move(coords);
  request.context.trace_id = trace_id;
  return request;
}

Request HealthRequest() {
  Request request;
  request.verb = Verb::kHealth;
  return request;
}

std::vector<double> Flatten(const PointSet& points) {
  std::vector<double> coords;
  for (size_t i = 0; i < points.size(); ++i) {
    for (double v : points[i]) {
      coords.push_back(v);
    }
  }
  return coords;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

size_t CountSpans(const std::vector<obs::TraceSpan>& spans, uint64_t id,
                  const std::string& name) {
  size_t n = 0;
  for (const auto& span : spans) {
    if (span.trace_id == id && span.name == name) {
      ++n;
    }
  }
  return n;
}

// The tentpole acceptance scenario: a single stamped INGEST against a
// 4-shard durable collection produces one trace whose spans cover every
// layer, all linked by the request's id, and the TRACE dump of that id is
// schema-valid Chrome JSON.
TEST(ObservabilityTest, ShardedDurableIngestYieldsOneConnectedTrace) {
  const size_t dims = 2;
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  options.num_shards = 4;
  options.data_dir = FreshDir("obs_connected_trace");
  obs::Registry registry;
  options.registry = &registry;
  obs::TraceCollector trace;
  options.trace = &trace;
  DetectionService service(options);
  ASSERT_TRUE(service.recovery_status().ok());
  ServiceHandle handle(&service);

  Rng rng(20260809);
  // A wide untraced batch first, so the region plan spans [0, 12) and the
  // traced batch below scatters onto all four shards.
  auto plan = handle.Call(IngestRequest(
      "c", dims, Flatten(testing::UniformPoints(&rng, 160, dims, 0.0, 12.0))));
  ASSERT_TRUE(plan.ok() && plan->status.ok()) << plan->status;

  const uint64_t id = 0x0b5c0a7d5eedull;
  auto traced = handle.Call(IngestRequest(
      "c", dims, Flatten(testing::UniformPoints(&rng, 120, dims, 0.0, 12.0)),
      id));
  ASSERT_TRUE(traced.ok() && traced->status.ok()) << traced->status;
  EXPECT_EQ(traced->trace_id, id);  // stamped request: id echoed
  EXPECT_GT(traced->server_seconds, 0.0);

  const auto spans = trace.Spans();
  EXPECT_EQ(CountSpans(spans, id, "ingest"), 1u);  // root request span
  EXPECT_EQ(CountSpans(spans, id, "queue_wait"), 1u);
  // Uniform points across the full planned range touch every slab region.
  EXPECT_GE(CountSpans(spans, id, "shard_apply"), 4u);
  EXPECT_EQ(CountSpans(spans, id, "ghost_exchange"), 1u);
  EXPECT_EQ(CountSpans(spans, id, "wal_commit"), 1u);
  EXPECT_EQ(CountSpans(spans, id, "snapshot_publish"), 1u);
  // Every one of the request's spans is scoped to its collection.
  for (const auto& span : spans) {
    if (span.trace_id == id && span.name != "apply_pass") {
      EXPECT_EQ(span.scope, "c") << span.name;
    }
  }

  // The dump of exactly this trace is schema-valid and self-consistent.
  obs::TraceFilter filter;
  filter.trace_id = id;
  const std::string json = trace.ToChromeJson(filter);
  EXPECT_TRUE(IsValidJson(json)) << json;
  const std::string hex =
      StrFormat("%016llx", static_cast<unsigned long long>(id));
  EXPECT_NE(json.find("\"trace_id\":\"" + hex + "\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard_apply\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wal_commit\""), std::string::npos);

  service.Stop();
}

TEST(ObservabilityTest, UnstampedRequestGetsServerIdButNoEcho) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  obs::Registry registry;
  options.registry = &registry;
  obs::TraceCollector trace;
  options.trace = &trace;
  DetectionService service(options);
  ServiceHandle handle(&service);

  auto response =
      handle.Call(IngestRequest("c", 2, {0.0, 0.0, 0.1, 0.1}));
  ASSERT_TRUE(response.ok() && response->status.ok());
  // The server self-stamped a fresh id for its own spans but must not
  // echo it: the reply header would break pre-trace clients.
  EXPECT_EQ(response->trace_id, 0u);
  const auto spans = trace.Spans();
  uint64_t stamped = 0;
  for (const auto& span : spans) {
    if (span.name == "ingest") {
      stamped = span.trace_id;
    }
  }
  EXPECT_NE(stamped, 0u);
  EXPECT_GE(CountSpans(spans, stamped, "queue_wait"), 1u);
  service.Stop();
}

TEST(ObservabilityTest, NoCollectorMeansNoSpansAndNoStamping) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);
  auto response = handle.Call(IngestRequest("c", 2, {0.0, 0.0}));
  ASSERT_TRUE(response.ok() && response->status.ok());
  EXPECT_EQ(response->trace_id, 0u);
  service.Stop();
}

TEST(ObservabilityTest, SlowRequestLogCarriesTraceId) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  options.slow_request_seconds = 0.0;  // every request is "slow"
  obs::Registry registry;
  options.registry = &registry;
  obs::TraceCollector trace;
  options.trace = &trace;
  DetectionService service(options);
  ServiceHandle handle(&service);

  std::mutex mu;
  std::vector<LogRecord> records;
  SetLogSink([&](const LogRecord& r) {
    std::lock_guard<std::mutex> lock(mu);
    records.push_back(r);
  });
  const uint64_t id = 0x51000000f00dull;
  auto response =
      handle.Call(IngestRequest("c", 2, {0.0, 0.0, 0.1, 0.1}, id));
  SetLogSink(nullptr);
  ASSERT_TRUE(response.ok() && response->status.ok());

  const std::string hex =
      StrFormat("%016llx", static_cast<unsigned long long>(id));
  bool found = false;
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& r : records) {
    if (r.message.find("slow request") != std::string::npos &&
        r.message.find("trace=" + hex) != std::string::npos &&
        r.message.find("verb=ingest") != std::string::npos &&
        r.message.find("collection=c") != std::string::npos) {
      EXPECT_EQ(r.level, LogLevel::kWarning);
      found = true;
    }
  }
  EXPECT_TRUE(found) << records.size() << " records, none matched";
  service.Stop();
}

TEST(ObservabilityTest, NegativeThresholdDisablesSlowLog) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  options.slow_request_seconds = -1.0;  // the default: disabled
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);

  std::mutex mu;
  size_t slow_lines = 0;
  SetLogSink([&](const LogRecord& r) {
    std::lock_guard<std::mutex> lock(mu);
    if (r.message.find("slow request") != std::string::npos) {
      ++slow_lines;
    }
  });
  auto response = handle.Call(IngestRequest("c", 2, {0.0, 0.0}));
  SetLogSink(nullptr);
  ASSERT_TRUE(response.ok() && response->status.ok());
  EXPECT_EQ(slow_lines, 0u);
  service.Stop();
}

TEST(ObservabilityTest, TraceVerbFiltersByScopeNameAndId) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  obs::Registry registry;
  options.registry = &registry;
  obs::TraceCollector trace;
  options.trace = &trace;
  DetectionService service(options);
  ServiceHandle handle(&service);

  const uint64_t id_a = 0xaaaaull;
  const uint64_t id_b = 0xbbbbull;
  ASSERT_TRUE(
      handle.Call(IngestRequest("a", 2, {0.0, 0.0, 0.1, 0.1}, id_a))->status.ok());
  ASSERT_TRUE(
      handle.Call(IngestRequest("b", 2, {5.0, 5.0, 5.1, 5.1}, id_b))->status.ok());

  // Scope filter: only collection "a" spans come back.
  Request dump;
  dump.verb = Verb::kTrace;
  dump.collection = "a";
  auto scoped = handle.Call(dump);
  ASSERT_TRUE(scoped.ok() && scoped->status.ok()) << scoped->status;
  EXPECT_TRUE(IsValidJson(scoped->trace.json)) << scoped->trace.json;
  EXPECT_NE(scoped->trace.json.find("\"scope\":\"a\""), std::string::npos);
  EXPECT_EQ(scoped->trace.json.find("\"scope\":\"b\""), std::string::npos);
  EXPECT_GT(scoped->trace.spans_retained, 0u);
  EXPECT_EQ(scoped->trace.spans_dropped, 0u);

  // Trace-id filter isolates one request across collections.
  Request by_id;
  by_id.verb = Verb::kTrace;
  by_id.trace_id_filter = id_b;
  auto only_b = handle.Call(by_id);
  ASSERT_TRUE(only_b.ok() && only_b->status.ok());
  EXPECT_EQ(only_b->trace.json.find("\"scope\":\"a\""), std::string::npos);
  EXPECT_NE(only_b->trace.json.find("\"scope\":\"b\""), std::string::npos);

  // Span-name filter: just the WAL-free in-memory service still emits
  // queue_wait; asking for it returns nothing else.
  Request by_name;
  by_name.verb = Verb::kTrace;
  by_name.trace_name_filter = "queue_wait";
  auto waits = handle.Call(by_name);
  ASSERT_TRUE(waits.ok() && waits->status.ok());
  EXPECT_NE(waits->trace.json.find("\"name\":\"queue_wait\""),
            std::string::npos);
  EXPECT_EQ(waits->trace.json.find("\"name\":\"ingest\""), std::string::npos);

  // Limit keeps only the most recent N spans.
  Request limited;
  limited.verb = Verb::kTrace;
  limited.trace_limit = 1;
  auto last = handle.Call(limited);
  ASSERT_TRUE(last.ok() && last->status.ok());
  size_t events = 0;
  for (size_t pos = 0;
       (pos = last->trace.json.find("\"ph\":\"X\"", pos)) != std::string::npos;
       ++pos) {
    ++events;
  }
  EXPECT_EQ(events, 1u);
  service.Stop();
}

TEST(ObservabilityTest, TraceVerbWithoutCollectorFails) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);
  Request dump;
  dump.verb = Verb::kTrace;
  auto response = handle.Call(dump);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kFailedPrecondition);
  service.Stop();
}

TEST(ObservabilityTest, HealthNotReadyUntilDeferredRecoveryRuns) {
  const std::string dir = FreshDir("obs_health_flip");
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  options.data_dir = dir;
  {
    obs::Registry registry;
    options.registry = &registry;
    DetectionService service(options);
    ASSERT_TRUE(service.recovery_status().ok());
    ServiceHandle handle(&service);
    ASSERT_TRUE(handle.Call(IngestRequest("c", 2, {0.0, 0.0, 0.1, 0.1}))
                    ->status.ok());
    service.Stop();
  }

  // Second run over the same directory, recovery deferred: the service
  // must answer HEALTH (not-ready) and refuse collection verbs while the
  // WAL is conceptually still replaying.
  obs::Registry registry;
  options.registry = &registry;
  options.defer_recovery = true;
  DetectionService service(options);
  ServiceHandle handle(&service);

  auto health = handle.Call(HealthRequest());
  ASSERT_TRUE(health.ok() && health->status.ok()) << health->status;
  EXPECT_EQ(health->health.state, HealthState::kNotReady);
  EXPECT_EQ(health->health.recovery, RecoveryState::kRecovering);
  EXPECT_FALSE(health->health.reason.empty());

  auto refused = handle.Call(IngestRequest("c", 2, {1.0, 1.0}));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status.code(), StatusCode::kUnavailable);

  service.RunDeferredRecovery();
  ASSERT_TRUE(service.recovery_status().ok()) << service.recovery_status();

  health = handle.Call(HealthRequest());
  ASSERT_TRUE(health.ok() && health->status.ok());
  EXPECT_EQ(health->health.state, HealthState::kReady);
  EXPECT_EQ(health->health.recovery, RecoveryState::kDone);
  EXPECT_EQ(health->health.collections, 1u);  // recovered from the WAL

  auto accepted = handle.Call(IngestRequest("c", 2, {1.0, 1.0}));
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted->status.ok()) << accepted->status;
  service.Stop();
}

TEST(ObservabilityTest, HealthReportsProcessSelfGauges) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);
  auto health = handle.Call(HealthRequest());
  ASSERT_TRUE(health.ok() && health->status.ok());
  EXPECT_EQ(health->health.state, HealthState::kReady);
  EXPECT_EQ(health->health.recovery, RecoveryState::kNone);
  EXPECT_GE(health->health.uptime_seconds, 0.0);
#if defined(__linux__)
  EXPECT_GT(health->health.rss_bytes, 0u);
  EXPECT_GT(health->health.open_fds, 0u);
  EXPECT_GT(health->health.threads, 0u);
#endif
  service.Stop();
}

TEST(ObservabilityTest, StatsCarriesLatencyQuantileRows) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);
  ASSERT_TRUE(
      handle.Call(IngestRequest("c", 2, {0.0, 0.0, 0.1, 0.1}))->status.ok());

  Request stats;
  stats.verb = Verb::kStats;
  stats.collection = "c";
  auto answer = handle.Call(stats);
  ASSERT_TRUE(answer.ok() && answer->status.ok());
  bool saw_ingest = false;
  for (const auto& row : answer->stats.latencies) {
    EXPECT_GT(row.count, 0u) << row.verb;  // zero-count verbs are omitted
    EXPECT_LE(row.p50_seconds, row.p99_seconds) << row.verb;
    EXPECT_LE(row.p99_seconds, row.p999_seconds) << row.verb;
    if (row.verb == "ingest") {
      saw_ingest = true;
      EXPECT_EQ(row.count, 1u);
      EXPECT_GT(row.p50_seconds, 0.0);
    }
  }
  EXPECT_TRUE(saw_ingest);
  service.Stop();
}

TEST(ObservabilityTest, RequestHistogramExemplarsCarryTraceIds) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  obs::Registry registry;
  options.registry = &registry;
  obs::TraceCollector trace;
  options.trace = &trace;
  DetectionService service(options);
  ServiceHandle handle(&service);
  const uint64_t id = 0xe9e3a91ull;
  ASSERT_TRUE(
      handle.Call(IngestRequest("c", 2, {0.0, 0.0, 0.1, 0.1}, id))->status.ok());

  Request metrics;
  metrics.verb = Verb::kMetrics;
  auto answer = handle.Call(metrics);
  ASSERT_TRUE(answer.ok() && answer->status.ok());
  const std::string hex =
      StrFormat("%016llx", static_cast<unsigned long long>(id));
  EXPECT_NE(answer->metrics.text.find("# {trace_id=\"" + hex + "\"}"),
            std::string::npos)
      << answer->metrics.text.substr(0, 2000);
  service.Stop();
}

}  // namespace
}  // namespace dbscout::service

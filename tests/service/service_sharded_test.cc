// Oracle-equality tests for the horizontally sharded service: for every
// shard count, a randomized mixed INGEST / TTL-expiry workload must
// produce — at every published epoch — exactly the labeling
// DetectSequential computes on the live points. Region-boundary points
// (coordinates landing on dim-0 slab edges) are injected deliberately:
// they exercise the ghost-halo exchange, where a sharding bug shows up
// as a wrong label on a point whose eps-neighborhood straddles regions.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dbscout.h"
#include "obs/metrics.h"
#include "service/handle.h"
#include "service/service.h"
#include "testutil.h"

namespace dbscout::service {
namespace {

using core::PointKind;

Request IngestRequest(const std::string& collection, uint16_t dims,
                      std::vector<double> coords) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = collection;
  request.dims = dims;
  request.coords = std::move(coords);
  return request;
}

Request SnapshotRequest(const std::string& collection) {
  Request request;
  request.verb = Verb::kSnapshot;
  request.collection = collection;
  return request;
}

Request StatsRequest(const std::string& collection) {
  Request request;
  request.verb = Verb::kStats;
  request.collection = collection;
  return request;
}

Request ConfigureRequest(const std::string& collection, double ttl) {
  Request request;
  request.verb = Verb::kConfigure;
  request.collection = collection;
  request.ttl_seconds = ttl;
  return request;
}

/// Asserts the collection's published snapshot equals DetectSequential on
/// its live points: same per-point kinds (live points only — expired ones
/// keep their last label) and the same live outlier set.
void ExpectMatchesOracle(ServiceHandle* handle, const std::string& name,
                         const PointSet& ingested,
                         const core::Params& params, const char* where) {
  auto snapshot = handle->Call(SnapshotRequest(name));
  ASSERT_TRUE(snapshot.ok()) << where;
  ASSERT_TRUE(snapshot->status.ok()) << where << ": " << snapshot->status;
  const SnapshotAnswer& snap = snapshot->snapshot;
  ASSERT_EQ(snap.epoch, ingested.size()) << where;

  PointSet live(ingested.dims());
  for (size_t i = 0; i < ingested.size(); ++i) {
    if (snap.alive[i] != 0) {
      live.Add(ingested[i]);
    }
  }
  auto oracle = core::DetectSequential(live, params);
  ASSERT_TRUE(oracle.ok()) << where;
  size_t j = 0;
  for (size_t i = 0; i < ingested.size(); ++i) {
    if (snap.alive[i] == 0) {
      continue;
    }
    ASSERT_EQ(snap.kinds[i], oracle->kinds[j])
        << where << ": live point " << i << " (oracle index " << j << ")";
    ++j;
  }
  ASSERT_EQ(j, live.size()) << where;

  auto stats = handle->Call(StatsRequest(name));
  ASSERT_TRUE(stats.ok() && stats->status.ok()) << where;
  EXPECT_EQ(stats->stats.live_points, live.size()) << where;
  EXPECT_EQ(stats->stats.num_outliers,
            static_cast<uint64_t>(std::count(oracle->kinds.begin(),
                                             oracle->kinds.end(),
                                             PointKind::kOutlier)))
      << where;
}

/// One randomized mixed workload against `num_shards` detector shards:
/// a first wide batch (plans the regions), then rounds of clustered +
/// uniform + slab-boundary points under a sliding window, with the
/// oracle re-checked after every ingest and every expiry sweep.
void RunShardedWorkload(size_t num_shards, uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "shards=" << num_shards);
  const size_t dims = 2;
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 4;
  // Cell side the detectors will use; multiples of it are exact dim-0
  // slab boundaries.
  const double side = params.eps / std::sqrt(static_cast<double>(dims));

  std::atomic<double> now{0.0};
  ServiceOptions options;
  options.params = params;
  options.num_shards = num_shards;
  options.clock = [&now] { return now.load(); };
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);

  Rng rng(seed);
  PointSet ingested(dims);
  auto ingest = [&](const PointSet& batch) {
    std::vector<double> coords;
    for (size_t i = 0; i < batch.size(); ++i) {
      for (double v : batch[i]) {
        coords.push_back(v);
      }
      ingested.Add(batch[i]);
    }
    auto response =
        handle.Call(IngestRequest("c", dims, std::move(coords)));
    ASSERT_TRUE(response.ok() && response->status.ok());
    ASSERT_EQ(response->epoch, ingested.size());
  };

  // Round 0: a wide uniform batch so the region plan sees the full range.
  ingest(testing::UniformPoints(&rng, 120, dims, 0.0, 12.0));
  ExpectMatchesOracle(&handle, "c", ingested, params, "after plan batch");
  {
    auto stats = handle.Call(StatsRequest("c"));
    ASSERT_TRUE(stats.ok() && stats->status.ok());
    EXPECT_EQ(stats->stats.shards, num_shards);
    EXPECT_EQ(stats->stats.shard_rows.size(), num_shards);
    uint64_t held = 0;
    for (const auto& row : stats->stats.shard_rows) {
      held += row.points;
    }
    // Every shard's holdings include its ghosts, so together they hold at
    // least every live point once.
    EXPECT_GE(held, stats->stats.live_points);
  }

  ASSERT_TRUE(handle.Call(ConfigureRequest("c", 5.0))->status.ok());

  for (int round = 1; round <= 5; ++round) {
    SCOPED_TRACE(::testing::Message() << "round " << round);
    PointSet batch(dims);
    // Tight clusters at random centers: dense cores whose neighborhoods
    // can straddle region boundaries.
    const PointSet clusters =
        testing::ClusteredPoints(&rng, 50, dims, 3, 0.2);
    for (size_t i = 0; i < clusters.size(); ++i) {
      batch.Add(clusters[i]);
    }
    // Sparse background noise over the planned range.
    const PointSet noise = testing::UniformPoints(&rng, 20, dims, -2.0, 14.0);
    for (size_t i = 0; i < noise.size(); ++i) {
      batch.Add(noise[i]);
    }
    // Region-boundary points: x exactly on a dim-0 slab edge, plus one
    // point epsilon to each side of it.
    for (int k = 0; k < 6; ++k) {
      const double edge =
          static_cast<double>(rng.NextBounded(17)) * side;
      const double y = rng.Uniform(0.0, 3.0);
      batch.Add({edge, y});
      batch.Add({std::nextafter(edge, -1e9), y});
      batch.Add({std::nextafter(edge, 1e9), y});
    }
    ingest(batch);
    ExpectMatchesOracle(&handle, "c", ingested, params, "after ingest");

    // Age the window by 2s per round: round r's sweep expires everything
    // stamped at or before t = 2r - 5 (the plan batch first, then each
    // round's batch in turn) — removals flow through the same router pass
    // as the adds, dropping ghost replicas with their home copies.
    now.store(2.0 * round);
    service.SweepExpiredNow();
    ExpectMatchesOracle(&handle, "c", ingested, params, "after sweep");
  }

  // Final drain: everything ages out, then one fresh batch over the old
  // coordinate range still labels exactly.
  now.store(1000.0);
  service.SweepExpiredNow();
  {
    auto stats = handle.Call(StatsRequest("c"));
    ASSERT_TRUE(stats.ok() && stats->status.ok());
    EXPECT_EQ(stats->stats.live_points, 0u);
  }
  ingest(testing::ClusteredPoints(&rng, 60, dims, 2, 0.3));
  ExpectMatchesOracle(&handle, "c", ingested, params, "after refill");
}

TEST(ServiceShardedTest, OneShardMatchesOracle) {
  RunShardedWorkload(1, 20260809);
}

TEST(ServiceShardedTest, TwoShardsMatchOracle) {
  RunShardedWorkload(2, 20260810);
}

TEST(ServiceShardedTest, FourShardsMatchOracle) {
  RunShardedWorkload(4, 20260811);
}

TEST(ServiceShardedTest, SevenShardsMatchOracle) {
  RunShardedWorkload(7, 20260812);
}

TEST(ServiceShardedTest, ShardCountsAgreeAcrossConfigurations) {
  // The same deterministic stream through 1, 2, and 4 shards must publish
  // identical global counters (epoch, live, core, outliers) — the
  // sharding is an implementation detail of the collection.
  struct Totals {
    uint64_t epoch, live, core, outliers;
  };
  std::vector<Totals> totals;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ServiceOptions options;
    options.params.eps = 1.0;
    options.params.min_pts = 4;
    options.num_shards = shards;
    obs::Registry registry;
    options.registry = &registry;
    DetectionService service(options);
    ServiceHandle handle(&service);
    Rng rng(777);
    const PointSet points = testing::ClusteredPoints(&rng, 400, 2, 4, 0.25);
    std::vector<double> coords;
    for (size_t i = 0; i < points.size(); ++i) {
      for (double v : points[i]) {
        coords.push_back(v);
      }
    }
    ASSERT_TRUE(handle.Call(IngestRequest("c", 2, coords))->status.ok());
    auto stats = handle.Call(StatsRequest("c"));
    ASSERT_TRUE(stats.ok() && stats->status.ok());
    totals.push_back(Totals{stats->stats.epoch, stats->stats.live_points,
                            stats->stats.num_core,
                            stats->stats.num_outliers});
  }
  for (size_t i = 1; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i].epoch, totals[0].epoch);
    EXPECT_EQ(totals[i].live, totals[0].live);
    EXPECT_EQ(totals[i].core, totals[0].core);
    EXPECT_EQ(totals[i].outliers, totals[0].outliers);
  }
}

TEST(ServiceShardedTest, ShardedProbeQueriesMatchUnsharded) {
  // Probe classification routes to the probe's home shard; answers must
  // be identical to the single-detector service for probes everywhere in
  // the range, including on region boundaries.
  Rng rng(4242);
  const PointSet points = testing::ClusteredPoints(&rng, 300, 2, 3, 0.2);
  std::vector<double> coords;
  for (size_t i = 0; i < points.size(); ++i) {
    for (double v : points[i]) {
      coords.push_back(v);
    }
  }
  auto make_service = [&](size_t shards, obs::Registry* registry) {
    ServiceOptions options;
    options.params.eps = 1.0;
    options.params.min_pts = 5;
    options.num_shards = shards;
    options.registry = registry;
    return std::make_unique<DetectionService>(options);
  };
  obs::Registry r1, r4;
  auto single = make_service(1, &r1);
  auto sharded = make_service(4, &r4);
  ServiceHandle single_handle(single.get());
  ServiceHandle sharded_handle(sharded.get());
  ASSERT_TRUE(
      single_handle.Call(IngestRequest("c", 2, coords))->status.ok());
  ASSERT_TRUE(
      sharded_handle.Call(IngestRequest("c", 2, coords))->status.ok());

  for (int i = 0; i < 200; ++i) {
    Request probe;
    probe.verb = Verb::kQuery;
    probe.collection = "c";
    probe.query_by_id = false;
    probe.want_score = true;
    probe.query_point = {rng.Uniform(-12.0, 12.0), rng.Uniform(-12.0, 12.0)};
    const Response a = single_handle.Call(probe).value();
    const Response b = sharded_handle.Call(probe).value();
    ASSERT_TRUE(a.status.ok() && b.status.ok());
    EXPECT_EQ(a.query.kind, b.query.kind) << "probe " << i;
    EXPECT_EQ(a.query.score, b.query.score) << "probe " << i;
  }
}

}  // namespace
}  // namespace dbscout::service

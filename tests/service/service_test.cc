#include "service/service.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dbscout.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/handle.h"
#include "testutil.h"

namespace dbscout::service {
namespace {

using core::PointKind;

ServiceOptions MakeOptions(double eps, int min_pts) {
  ServiceOptions options;
  options.params.eps = eps;
  options.params.min_pts = min_pts;
  return options;
}

std::vector<double> Flatten(const PointSet& points, size_t begin,
                            size_t end) {
  std::vector<double> coords;
  coords.reserve((end - begin) * points.dims());
  for (size_t i = begin; i < end; ++i) {
    for (double v : points[i]) {
      coords.push_back(v);
    }
  }
  return coords;
}

Request IngestRequest(const std::string& collection, uint16_t dims,
                      std::vector<double> coords) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = collection;
  request.dims = dims;
  request.coords = std::move(coords);
  return request;
}

Request SnapshotRequest(const std::string& collection) {
  Request request;
  request.verb = Verb::kSnapshot;
  request.collection = collection;
  return request;
}

Request StatsRequest(const std::string& collection) {
  Request request;
  request.verb = Verb::kStats;
  request.collection = collection;
  return request;
}

TEST(ServiceTest, IngestThenReadsMatchSequentialOracle) {
  Rng rng(20260806);
  const PointSet points = testing::ClusteredPoints(&rng, 600, 2, 3, 0.2);
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 5;
  auto expected = core::DetectSequential(points, params);
  ASSERT_TRUE(expected.ok());

  DetectionService service(MakeOptions(params.eps, params.min_pts));
  ServiceHandle handle(&service);
  // Several batches through the full wire round trip.
  for (size_t begin = 0; begin < points.size(); begin += 100) {
    auto response = handle.Call(IngestRequest(
        "c", 2, Flatten(points, begin, std::min(begin + 100, points.size()))));
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->status.ok()) << response->status;
    EXPECT_EQ(response->epoch, std::min(begin + 100, points.size()));
  }

  auto snapshot = handle.Call(SnapshotRequest("c"));
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(snapshot->status.ok()) << snapshot->status;
  EXPECT_EQ(snapshot->snapshot.epoch, points.size());
  EXPECT_EQ(snapshot->snapshot.kinds, expected->kinds);
  EXPECT_EQ(snapshot->snapshot.num_core, expected->num_core);

  auto stats = handle.Call(StatsRequest("c"));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status.ok());
  EXPECT_EQ(stats->stats.num_points, points.size());
  EXPECT_EQ(stats->stats.num_core, expected->num_core);
  EXPECT_EQ(stats->stats.num_outliers, expected->outliers.size());
  EXPECT_EQ(stats->stats.num_cells, expected->num_cells);
  EXPECT_EQ(stats->stats.admission_rejections, 0u);
  ASSERT_FALSE(stats->stats.phases.empty());
  EXPECT_EQ(stats->stats.phases[0].name, "apply");
  EXPECT_EQ(stats->stats.phases[0].records, points.size());

  // QUERY by id agrees with the snapshot for every point.
  for (uint32_t i = 0; i < points.size(); ++i) {
    Request query;
    query.verb = Verb::kQuery;
    query.collection = "c";
    query.query_by_id = true;
    query.query_id = i;
    auto response = handle.Call(query);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
    ASSERT_EQ(response->query.kind, expected->kinds[i]) << "point " << i;
    EXPECT_EQ(response->query.epoch, points.size());
  }
}

TEST(ServiceTest, ProbeQueryMatchesBruteForceOnAppendedSet) {
  Rng rng(20260807);
  const PointSet points = testing::ClusteredPoints(&rng, 300, 2, 2, 0.25);
  const double eps = 1.0;
  const int min_pts = 5;
  DetectionService service(MakeOptions(eps, min_pts));
  ServiceHandle handle(&service);
  auto ingest =
      handle.Call(IngestRequest("c", 2, Flatten(points, 0, points.size())));
  ASSERT_TRUE(ingest.ok());
  ASSERT_TRUE(ingest->status.ok());

  for (int t = 0; t < 40; ++t) {
    const std::vector<double> probe = {rng.Uniform(-10.0, 10.0),
                                       rng.Uniform(-10.0, 10.0)};
    PointSet appended = points;
    appended.Add(probe);
    const PointKind expected =
        testing::BruteForceKinds(appended, eps, min_pts).back();

    Request query;
    query.verb = Verb::kQuery;
    query.collection = "c";
    query.query_by_id = false;
    query.query_point = probe;
    query.want_score = true;
    auto response = handle.Call(query);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
    ASSERT_EQ(response->query.kind, expected) << "probe " << t;
    ASSERT_TRUE(response->query.has_score);
    if (expected == PointKind::kCore) {
      EXPECT_EQ(response->query.score, 0.0);
    } else if (expected == PointKind::kBorder) {
      EXPECT_LE(response->query.score, eps);
    } else {
      EXPECT_GT(response->query.score, eps);
    }
  }
}

TEST(ServiceTest, AdmissionCapShedsWithUnavailable) {
  ServiceOptions options = MakeOptions(1.0, 3);
  options.max_pending_ingests = 2;
  DetectionService service(options);
  service.SetApplyPausedForTest(true);

  EXPECT_TRUE(service.IngestAsync("c", 2, {0.0, 0.0}).ok());
  EXPECT_TRUE(service.IngestAsync("c", 2, {0.1, 0.1}).ok());
  const Status shed = service.IngestAsync("c", 2, {0.2, 0.2});
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.admission_rejections(), 1u);

  // A blocking ingest through Dispatch is shed the same way (it must not
  // block forever on a full queue).
  ServiceHandle handle(&service);
  auto blocked = handle.Call(IngestRequest("c", 2, {0.3, 0.3}));
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.admission_rejections(), 2u);

  // Resume: the queued batches drain and nothing shed was applied.
  service.SetApplyPausedForTest(false);
  service.Drain();
  auto stats = handle.Call(StatsRequest("c"));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status.ok());
  EXPECT_EQ(stats->stats.num_points, 2u);
  EXPECT_EQ(stats->stats.admission_rejections, 2u);
}

TEST(ServiceTest, UnknownCollectionIsNotFound) {
  DetectionService service(MakeOptions(1.0, 3));
  ServiceHandle handle(&service);
  for (Verb verb : {Verb::kQuery, Verb::kStats, Verb::kSnapshot}) {
    Request request;
    request.verb = verb;
    request.collection = "nope";
    request.query_by_id = true;
    auto response = handle.Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status.code(), StatusCode::kNotFound);
  }
}

TEST(ServiceTest, RejectsBadBatches) {
  DetectionService service(MakeOptions(1.0, 3));
  ServiceHandle handle(&service);
  // dims = 0.
  auto r0 = handle.Call(IngestRequest("c", 0, {}));
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->status.code(), StatusCode::kInvalidArgument);
  // Ragged coords. The wire format cannot even express these (the point
  // count is derived from dims), so exercise the service-level validation
  // through Dispatch directly.
  const Response r1 = service.Dispatch(IngestRequest("c", 2, {1.0, 2.0, 3.0}));
  EXPECT_EQ(r1.status.code(), StatusCode::kInvalidArgument);
  // Dims change across batches of one collection.
  ASSERT_TRUE(handle.Call(IngestRequest("c", 2, {1.0, 2.0}))->status.ok());
  auto r2 = handle.Call(IngestRequest("c", 3, {1.0, 2.0, 3.0}));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->status.code(), StatusCode::kInvalidArgument);
  // Empty collection name.
  auto r3 = handle.Call(IngestRequest("", 2, {1.0, 2.0}));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->status.code(), StatusCode::kInvalidArgument);
}

TEST(ServiceTest, QueryIdBeyondEpochIsOutOfRange) {
  DetectionService service(MakeOptions(1.0, 3));
  ServiceHandle handle(&service);
  ASSERT_TRUE(handle.Call(IngestRequest("c", 2, {0.0, 0.0}))->status.ok());
  Request query;
  query.verb = Verb::kQuery;
  query.collection = "c";
  query.query_by_id = true;
  query.query_id = 1;
  auto response = handle.Call(query);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kOutOfRange);
}

TEST(ServiceTest, CollectionLimitEnforced) {
  ServiceOptions options = MakeOptions(1.0, 3);
  options.max_collections = 2;
  DetectionService service(options);
  ServiceHandle handle(&service);
  ASSERT_TRUE(handle.Call(IngestRequest("a", 2, {0.0, 0.0}))->status.ok());
  ASSERT_TRUE(handle.Call(IngestRequest("b", 2, {0.0, 0.0}))->status.ok());
  auto r = handle.Call(IngestRequest("d", 2, {0.0, 0.0}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, StopDrainsQueueAndRefusesNewIngests) {
  DetectionService service(MakeOptions(1.0, 2));
  service.SetApplyPausedForTest(true);
  ASSERT_TRUE(service.IngestAsync("c", 1, {0.0}).ok());
  ASSERT_TRUE(service.IngestAsync("c", 1, {0.5}).ok());
  // Stop overrides the pause: the queued batches must be applied (graceful
  // drain), then new work refused.
  service.Stop();
  EXPECT_EQ(service.IngestAsync("c", 1, {1.0}).code(),
            StatusCode::kUnavailable);
  // Reads still work against the drained state.
  ServiceHandle handle(&service);
  auto snapshot = handle.Call(SnapshotRequest("c"));
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(snapshot->status.ok());
  EXPECT_EQ(snapshot->snapshot.epoch, 2u);
  // Both points within eps=1.0 of each other: minPts=2 makes them core.
  EXPECT_EQ(snapshot->snapshot.kinds,
            (std::vector<PointKind>{PointKind::kCore, PointKind::kCore}));
}

TEST(ServiceTest, StatsReportsUptime) {
  DetectionService service(MakeOptions(1.0, 2));
  ServiceHandle handle(&service);
  ASSERT_TRUE(service.IngestAsync("c", 1, {0.0}).ok());
  service.Drain();
  auto stats = handle.Call(StatsRequest("c"));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status.ok());
  EXPECT_GT(stats->stats.uptime_seconds, 0.0);
  EXPECT_GE(service.UptimeSeconds(), stats->stats.uptime_seconds);
}

Request MetricsRequest() {
  Request request;
  request.verb = Verb::kMetrics;
  return request;
}

TEST(ServiceTest, MetricsVerbScrapesLocalRegistry) {
  // A test-local registry isolates the assertions from whatever the global
  // registry accumulated in other tests.
  obs::Registry registry;
  ServiceOptions options = MakeOptions(1.0, 2);
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);

  // METRICS works before any collection exists (no collection required).
  auto empty_scrape = handle.Call(MetricsRequest());
  ASSERT_TRUE(empty_scrape.ok());
  ASSERT_TRUE(empty_scrape->status.ok());
  EXPECT_NE(empty_scrape->metrics.text.find("dbscout_ingest_points_total"),
            std::string::npos);

  ASSERT_TRUE(service.IngestAsync("c", 1, {0.0, 0.5, 1.0}).ok());
  service.Drain();
  auto query = handle.Call(StatsRequest("c"));
  ASSERT_TRUE(query.ok());

  const auto scrape = handle.Call(MetricsRequest());
  ASSERT_TRUE(scrape.ok());
  ASSERT_TRUE(scrape->status.ok());
  const std::string& text = scrape->metrics.text;
  EXPECT_NE(text.find("# TYPE dbscout_ingest_points_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbscout_ingest_points_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("dbscout_ingest_batches_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbscout_collections 1\n"), std::string::npos);
  // Per-verb latency histograms carry the verb label; the stats call above
  // must have been observed.
  EXPECT_NE(text.find("dbscout_request_seconds_count{verb=\"stats\"} 1"),
            std::string::npos);
  // Queue-wait and batch-size histograms saw the one applied batch.
  EXPECT_NE(text.find("dbscout_ingest_queue_wait_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("dbscout_apply_batch_size_count 1"),
            std::string::npos);
}

TEST(ServiceTest, IngestErrorAndShedCountersTrack) {
  obs::Registry registry;
  ServiceOptions options = MakeOptions(1.0, 2);
  options.registry = &registry;
  options.max_pending_ingests = 1;
  DetectionService service(options);
  service.SetApplyPausedForTest(true);
  ASSERT_TRUE(service.IngestAsync("c", 1, {0.0}).ok());
  // Queue full: admission shed.
  EXPECT_EQ(service.IngestAsync("c", 1, {1.0}).code(),
            StatusCode::kUnavailable);
  service.SetApplyPausedForTest(false);
  service.Drain();
  // A non-finite coordinate passes admission (only dims are checked at
  // enqueue) but fails at apply time, feeding the error counter.
  ASSERT_TRUE(
      service
          .IngestAsync("c", 1,
                       {std::numeric_limits<double>::quiet_NaN()})
          .ok());
  service.Drain();
  const std::string text = service.Dispatch(MetricsRequest()).metrics.text;
  EXPECT_NE(text.find("dbscout_ingest_shed_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("dbscout_ingest_errors_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("dbscout_ingest_points_total 1\n"), std::string::npos);
}

TEST(ServiceTest, ApplyPassEmitsServiceTraceSpans) {
  obs::Registry registry;
  obs::TraceCollector trace;
  ServiceOptions options = MakeOptions(1.0, 2);
  options.registry = &registry;
  options.trace = &trace;
  DetectionService service(options);
  ASSERT_TRUE(service.IngestAsync("c", 1, {0.0, 0.5}).ok());
  service.Drain();
  bool saw_apply_pass = false;
  for (const auto& span : trace.Spans()) {
    if (span.name == "apply_pass" && span.cat == "service") {
      saw_apply_pass = true;
      EXPECT_EQ(span.records, 2u);
    }
  }
  EXPECT_TRUE(saw_apply_pass);
}

TEST(ServiceTest, ReadsOnFreshCollectionSeeEpochZero) {
  DetectionService service(MakeOptions(1.0, 3));
  service.SetApplyPausedForTest(true);
  // First batch parked in the queue: reads must see a valid empty epoch,
  // not crash or block.
  ASSERT_TRUE(service.IngestAsync("c", 2, {0.0, 0.0}).ok());
  ServiceHandle handle(&service);
  auto snapshot = handle.Call(SnapshotRequest("c"));
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(snapshot->status.ok());
  EXPECT_EQ(snapshot->snapshot.epoch, 0u);
  EXPECT_TRUE(snapshot->snapshot.kinds.empty());
  service.SetApplyPausedForTest(false);
  service.Drain();
  snapshot = handle.Call(SnapshotRequest("c"));
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->snapshot.epoch, 1u);
}

Request ConfigureRequest(const std::string& collection, double ttl) {
  Request request;
  request.verb = Verb::kConfigure;
  request.collection = collection;
  request.ttl_seconds = ttl;
  return request;
}

TEST(ServiceTest, ConfigureValidatesAndEchoesTtl) {
  DetectionService service(MakeOptions(1.0, 2));
  ServiceHandle handle(&service);
  // Unknown collection.
  auto missing = handle.Call(ConfigureRequest("nope", 5.0));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status.code(), StatusCode::kNotFound);

  ASSERT_TRUE(handle.Call(IngestRequest("c", 1, {0.0}))->status.ok());
  // Invalid TTLs are refused without touching the collection.
  for (double bad : {-1.0, std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    auto r = handle.Call(ConfigureRequest("c", bad));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status.code(), StatusCode::kInvalidArgument);
  }
  auto ok = handle.Call(ConfigureRequest("c", 7.5));
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok->status.ok()) << ok->status;
  EXPECT_EQ(ok->configure.ttl_seconds, 7.5);
  auto stats = handle.Call(StatsRequest("c"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.ttl_seconds, 7.5);
  // TTL 0 turns the window back off.
  ASSERT_TRUE(handle.Call(ConfigureRequest("c", 0.0))->status.ok());
  EXPECT_EQ(handle.Call(StatsRequest("c"))->stats.ttl_seconds, 0.0);
}

TEST(ServiceTest, SlidingWindowExpiresAgedBatches) {
  // The injected clock is read from the apply loop's expiry wakeups too,
  // hence atomic.
  std::atomic<double> now{0.0};
  ServiceOptions options = MakeOptions(1.0, 2);
  options.clock = [&now] { return now.load(); };
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);

  // Batch A stamped at t=0, batch B at t=2, TTL 5 seconds.
  ASSERT_TRUE(
      handle.Call(IngestRequest("c", 2, {0.0, 0.0, 0.1, 0.0, 0.2, 0.0}))
          ->status.ok());
  ASSERT_TRUE(handle.Call(ConfigureRequest("c", 5.0))->status.ok());
  now.store(2.0);
  ASSERT_TRUE(
      handle.Call(IngestRequest("c", 2, {5.0, 5.0, 5.1, 5.0, 5.2, 5.0}))
          ->status.ok());

  // t=6: A (age 6) is out, B (age 4) stays.
  now.store(6.0);
  service.SweepExpiredNow();
  auto stats = handle.Call(StatsRequest("c"));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status.ok());
  EXPECT_EQ(stats->stats.num_points, 6u);  // epoch never rewinds
  EXPECT_EQ(stats->stats.live_points, 3u);
  EXPECT_EQ(stats->stats.window_begin, 3u);
  EXPECT_EQ(stats->stats.ttl_seconds, 5.0);

  auto snapshot = handle.Call(SnapshotRequest("c"));
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(snapshot->status.ok());
  EXPECT_EQ(snapshot->snapshot.epoch, 6u);
  EXPECT_EQ(snapshot->snapshot.alive,
            (std::vector<uint8_t>{0, 0, 0, 1, 1, 1}));
  // Expired points keep the last label they carried; the live batch is
  // still mutually core (three points within eps, minPts 2).
  EXPECT_EQ(snapshot->snapshot.kinds[3], PointKind::kCore);

  // t=20: everything ages out; the collection survives empty and accepts
  // new points.
  now.store(20.0);
  service.SweepExpiredNow();
  stats = handle.Call(StatsRequest("c"));
  EXPECT_EQ(stats->stats.live_points, 0u);
  EXPECT_EQ(stats->stats.window_begin, 6u);
  ASSERT_TRUE(
      handle.Call(IngestRequest("c", 2, {9.0, 9.0, 9.1, 9.0}))->status.ok());
  stats = handle.Call(StatsRequest("c"));
  EXPECT_EQ(stats->stats.live_points, 2u);
  EXPECT_EQ(stats->stats.num_points, 8u);
}

TEST(ServiceTest, DefaultTtlFromOptionsAppliesToNewCollections) {
  std::atomic<double> now{0.0};
  ServiceOptions options = MakeOptions(1.0, 2);
  options.ttl_seconds = 5.0;
  options.clock = [&now] { return now.load(); };
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  ServiceHandle handle(&service);
  ASSERT_TRUE(handle.Call(IngestRequest("c", 1, {0.0, 0.5}))->status.ok());
  EXPECT_EQ(handle.Call(StatsRequest("c"))->stats.ttl_seconds, 5.0);
  now.store(10.0);
  service.SweepExpiredNow();
  auto stats = handle.Call(StatsRequest("c"));
  EXPECT_EQ(stats->stats.live_points, 0u);
  EXPECT_EQ(stats->stats.window_begin, 2u);
}

TEST(ServiceTest, StatsReportsQueueDepthWhilePaused) {
  ServiceOptions options = MakeOptions(1.0, 2);
  obs::Registry registry;
  options.registry = &registry;
  DetectionService service(options);
  service.SetApplyPausedForTest(true);
  ASSERT_TRUE(service.IngestAsync("c", 1, {0.0}).ok());
  ASSERT_TRUE(service.IngestAsync("c", 1, {0.5}).ok());
  ServiceHandle handle(&service);
  auto stats = handle.Call(StatsRequest("c"));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status.ok());
  EXPECT_EQ(stats->stats.queue_depth, 2u);
  // The per-collection pending gauge mirrors it.
  const std::string text = registry.Expose();
  EXPECT_NE(text.find("dbscout_pending_batches{collection=\"c\"} 2"),
            std::string::npos)
      << text;
  service.SetApplyPausedForTest(false);
  service.Drain();
  stats = handle.Call(StatsRequest("c"));
  EXPECT_EQ(stats->stats.queue_depth, 0u);
}

}  // namespace
}  // namespace dbscout::service

// Equivalence tests for the batched distance kernels: the dispatched SIMD
// table must agree EXACTLY (same count / any / min, bit-for-bit) with the
// scalar reference across dims 1-9, block lengths 0-65, and eps boundary
// cases — the engines rely on this to stay bit-identical under dispatch.
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "simd/distance_kernel.h"

namespace dbscout::simd {
namespace {

constexpr size_t kMaxBlockLen = 65;

// Brute-force oracle, written independently of the kernel code.
double BruteSqDist(const double* a, const double* b, size_t d) {
  double sum = 0.0;
  for (size_t k = 0; k < d; ++k) {
    const double diff = a[k] - b[k];
    sum += diff * diff;
  }
  return sum;
}

struct Workload {
  std::vector<double> query;
  std::vector<double> block;  // row-major, n x d
  size_t n;
  size_t d;
};

Workload MakeWorkload(Rng* rng, size_t n, size_t d) {
  Workload w;
  w.n = n;
  w.d = d;
  w.query.resize(d);
  for (size_t k = 0; k < d; ++k) {
    w.query[k] = rng->NextDouble() * 10.0 - 5.0;
  }
  w.block.resize(n * d);
  for (size_t i = 0; i < n * d; ++i) {
    // A mix of near and far points so eps thresholds split the block.
    w.block[i] = rng->NextDouble() * 10.0 - 5.0;
  }
  // Plant a few exact duplicates of the query (distance exactly 0).
  for (size_t i = 0; i + 7 < n; i += 7) {
    for (size_t k = 0; k < d; ++k) {
      w.block[i * d + k] = w.query[k];
    }
  }
  return w;
}

/// eps2 values to sweep: 0, tiny, typical, huge, and — crucially — the
/// exact squared distance of a few block points, so `<= eps2` sits on the
/// boundary where a differently-rounded accumulation would flip the result.
std::vector<double> Eps2Cases(const Workload& w) {
  std::vector<double> cases = {0.0, 1e-300, 1.0, 25.0, 1e300};
  for (size_t i = 0; i < w.n; i += 3) {
    cases.push_back(
        BruteSqDist(w.query.data(), w.block.data() + i * w.d, w.d));
  }
  return cases;
}

class DistanceKernelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DistanceKernelTest, ScalarMatchesBruteForce) {
  const size_t d = GetParam();
  const DistanceKernels& scalar = ScalarKernels();
  Rng rng(100 + d);
  for (size_t n = 0; n <= kMaxBlockLen; ++n) {
    const Workload w = MakeWorkload(&rng, n, d);
    for (double eps2 : Eps2Cases(w)) {
      uint32_t expected = 0;
      double expected_min = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        const double d2 =
            BruteSqDist(w.query.data(), w.block.data() + i * d, d);
        expected += d2 <= eps2 ? 1 : 0;
        expected_min = std::min(expected_min, d2);
      }
      EXPECT_EQ(scalar.count_within[d](w.query.data(), w.block.data(), n,
                                       eps2, 0),
                expected)
          << "n=" << n << " eps2=" << eps2;
      EXPECT_EQ(scalar.any_within[d](w.query.data(), w.block.data(), n, eps2),
                expected > 0);
      EXPECT_EQ(scalar.min_sqdist[d](w.query.data(), w.block.data(), n),
                expected_min);
      std::vector<uint8_t> flags(n + 1, 0xAB);
      EXPECT_EQ(scalar.within_flags[d](w.query.data(), w.block.data(), n,
                                       eps2, flags.data()),
                expected);
      for (size_t i = 0; i < n; ++i) {
        const double d2 =
            BruteSqDist(w.query.data(), w.block.data() + i * d, d);
        EXPECT_EQ(flags[i], d2 <= eps2 ? 1 : 0) << "i=" << i;
      }
      EXPECT_EQ(flags[n], 0xAB);  // no write past the block
    }
  }
}

TEST_P(DistanceKernelTest, DispatchedMatchesScalarExactly) {
  const size_t d = GetParam();
  const DistanceKernels& scalar = ScalarKernels();
  const DistanceKernels& dispatched = DispatchedKernels();
  Rng rng(200 + d);
  for (size_t n = 0; n <= kMaxBlockLen; ++n) {
    const Workload w = MakeWorkload(&rng, n, d);
    for (double eps2 : Eps2Cases(w)) {
      EXPECT_EQ(dispatched.count_within[d](w.query.data(), w.block.data(), n,
                                           eps2, 0),
                scalar.count_within[d](w.query.data(), w.block.data(), n,
                                       eps2, 0))
          << dispatched.name << " n=" << n << " d=" << d << " eps2=" << eps2;
      EXPECT_EQ(
          dispatched.any_within[d](w.query.data(), w.block.data(), n, eps2),
          scalar.any_within[d](w.query.data(), w.block.data(), n, eps2));
      // Bit-exact min (compares +inf == +inf for empty blocks too).
      EXPECT_EQ(dispatched.min_sqdist[d](w.query.data(), w.block.data(), n),
                scalar.min_sqdist[d](w.query.data(), w.block.data(), n));
      std::vector<uint8_t> sflags(n), vflags(n);
      EXPECT_EQ(dispatched.within_flags[d](w.query.data(), w.block.data(), n,
                                           eps2, vflags.data()),
                scalar.within_flags[d](w.query.data(), w.block.data(), n,
                                       eps2, sflags.data()));
      EXPECT_EQ(sflags, vflags) << dispatched.name << " n=" << n;
    }
  }
}

TEST_P(DistanceKernelTest, CappedCountsAgreeAtBatchGranularity) {
  const size_t d = GetParam();
  const DistanceKernels& scalar = ScalarKernels();
  const DistanceKernels& dispatched = DispatchedKernels();
  Rng rng(300 + d);
  for (size_t n = 0; n <= kMaxBlockLen; n += 3) {
    const Workload w = MakeWorkload(&rng, n, d);
    for (double eps2 : {1.0, 25.0, 1e300}) {
      const uint32_t full = scalar.count_within[d](
          w.query.data(), w.block.data(), n, eps2, 0);
      for (uint32_t cap : {1u, 2u, 5u, 100u}) {
        const uint32_t s = scalar.count_within[d](w.query.data(),
                                                  w.block.data(), n, eps2,
                                                  cap);
        const uint32_t v = dispatched.count_within[d](
            w.query.data(), w.block.data(), n, eps2, cap);
        // Both variants check the cap every kKernelBatch points, so the
        // early-exit value itself must match, not just the >=cap decision.
        EXPECT_EQ(s, v) << "cap=" << cap << " n=" << n << " eps2=" << eps2;
        EXPECT_LE(s, full);
        EXPECT_EQ(s >= cap, full >= cap);
        if (s < cap) {
          EXPECT_EQ(s, full);  // no early exit -> exact count
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DistanceKernelTest,
                         ::testing::Range<size_t>(1, kKernelMaxDims + 1));

TEST(DistanceKernelDispatchTest, ForceScalarToggles) {
  const bool saved = ScalarKernelsForced();
  ForceScalarKernels(true);
  EXPECT_TRUE(ScalarKernelsForced());
  EXPECT_STREQ(DispatchedKernels().name, "scalar");
  ForceScalarKernels(false);
  EXPECT_FALSE(ScalarKernelsForced());
#if defined(__x86_64__) || defined(_M_X64)
  // On x86-64 the dispatched table is at least SSE2.
  EXPECT_STRNE(DispatchedKernels().name, "scalar");
#endif
  ForceScalarKernels(saved);
}

TEST(DistanceKernelDispatchTest, TablesAreFullyPopulated) {
  for (const DistanceKernels* table :
       {&ScalarKernels(), &DispatchedKernels()}) {
    for (size_t d = 0; d <= kKernelMaxDims; ++d) {
      EXPECT_NE(table->count_within[d], nullptr) << table->name << " d=" << d;
      EXPECT_NE(table->any_within[d], nullptr);
      EXPECT_NE(table->min_sqdist[d], nullptr);
      EXPECT_NE(table->within_flags[d], nullptr);
    }
  }
}

}  // namespace
}  // namespace dbscout::simd

// Snapshot files and the WAL-record fold: round-trips, CRC rejection of
// every single-bit flip, truncation rejection, and the continuity checks
// ApplyRecordToState enforces (base-epoch gaps, non-prefix expiry).

#include "storage/snapshot.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "grid/regions.h"

namespace dbscout::storage {
namespace {

std::string TestPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

CollectionState SampleState() {
  CollectionState state;
  state.dims = 3;
  state.epoch = 4;
  state.window_begin = 1;
  state.ttl_seconds = 7.5;
  state.has_plan = true;
  state.plan_halo = 2;
  state.plan_stripes = {grid::Stripe{-2, 3}, grid::Stripe{4, 11}};
  for (uint64_t i = 0; i < state.epoch * state.dims; ++i) {
    state.coords.push_back(0.25 * static_cast<double>(i));
  }
  return state;
}

TEST(SnapshotFileTest, RoundTrips) {
  const std::string path = TestPath("snap_roundtrip.snap");
  const CollectionState state = SampleState();
  ASSERT_TRUE(WriteSnapshotFile(path, state).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dims, state.dims);
  EXPECT_EQ(loaded->epoch, state.epoch);
  EXPECT_EQ(loaded->window_begin, state.window_begin);
  EXPECT_DOUBLE_EQ(loaded->ttl_seconds, state.ttl_seconds);
  ASSERT_TRUE(loaded->has_plan);
  EXPECT_EQ(loaded->plan_halo, state.plan_halo);
  ASSERT_EQ(loaded->plan_stripes.size(), 2u);
  EXPECT_EQ(loaded->plan_stripes[1].slab_hi, 11);
  EXPECT_EQ(loaded->coords, state.coords);
}

TEST(SnapshotFileTest, EmptyStateRoundTrips) {
  const std::string path = TestPath("snap_empty.snap");
  CollectionState state;
  state.dims = 2;
  ASSERT_TRUE(WriteSnapshotFile(path, state).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->epoch, 0u);
  EXPECT_FALSE(loaded->has_plan);
  EXPECT_TRUE(loaded->coords.empty());
}

TEST(SnapshotFileTest, EveryBitFlipIsRejected) {
  const std::string path = TestPath("snap_bitflip.snap");
  ASSERT_TRUE(WriteSnapshotFile(path, SampleState()).ok());
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  auto clean_state = ReadSnapshotFile(path);
  ASSERT_TRUE(clean_state.ok());
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::vector<uint8_t> flipped = clean;
    flipped[byte] ^= 1u << (byte % 8);
    WriteFileBytes(path, flipped);
    auto loaded = ReadSnapshotFile(path);
    // A flip anywhere must either be rejected outright or (only possible
    // for flips inside the coordinate payload that somehow collide — the
    // CRC makes this impossible for single bits) reproduce the state.
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << byte << " accepted";
  }
}

TEST(SnapshotFileTest, TruncationIsRejected) {
  const std::string path = TestPath("snap_truncated.snap");
  ASSERT_TRUE(WriteSnapshotFile(path, SampleState()).ok());
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  for (size_t keep = 0; keep < clean.size(); keep += 7) {
    WriteFileBytes(path,
                   std::vector<uint8_t>(clean.begin(), clean.begin() + keep));
    EXPECT_FALSE(ReadSnapshotFile(path).ok()) << "kept " << keep;
  }
}

TEST(SnapshotFileTest, MissingFileIsError) {
  EXPECT_FALSE(ReadSnapshotFile(TestPath("snap_missing.snap")).ok());
}

TEST(ApplyRecordToStateTest, FoldsALogIntoState) {
  CollectionState state;
  WalRecord create;
  create.type = WalRecordType::kCreate;
  create.dims = 2;
  create.ttl_seconds = 1.0;
  ASSERT_TRUE(ApplyRecordToState(create, &state).ok());
  EXPECT_EQ(state.dims, 2u);
  EXPECT_DOUBLE_EQ(state.ttl_seconds, 1.0);

  WalRecord plan;
  plan.type = WalRecordType::kPlan;
  plan.halo = 4;
  plan.stripes = {grid::Stripe{0, 5}};
  ASSERT_TRUE(ApplyRecordToState(plan, &state).ok());
  EXPECT_TRUE(state.has_plan);

  WalRecord ingest;
  ingest.type = WalRecordType::kIngest;
  ingest.dims = 2;
  ingest.base_epoch = 0;
  ingest.coords = {1.0, 2.0, 3.0, 4.0};
  ASSERT_TRUE(ApplyRecordToState(ingest, &state).ok());
  EXPECT_EQ(state.epoch, 2u);
  EXPECT_EQ(state.coords.size(), 4u);

  WalRecord expire;
  expire.type = WalRecordType::kExpire;
  expire.expire_begin = 0;
  expire.expire_end = 1;
  ASSERT_TRUE(ApplyRecordToState(expire, &state).ok());
  EXPECT_EQ(state.window_begin, 1u);
  // Coordinates of expired ids are kept: the id space stays dense.
  EXPECT_EQ(state.coords.size(), 4u);

  WalRecord configure;
  configure.type = WalRecordType::kConfigure;
  configure.ttl_seconds = 9.0;
  ASSERT_TRUE(ApplyRecordToState(configure, &state).ok());
  EXPECT_DOUBLE_EQ(state.ttl_seconds, 9.0);
}

TEST(ApplyRecordToStateTest, RejectsEpochGaps) {
  CollectionState state;
  WalRecord ingest;
  ingest.type = WalRecordType::kIngest;
  ingest.dims = 2;
  ingest.base_epoch = 5;  // state is at epoch 0: a lost record
  ingest.coords = {1.0, 2.0};
  EXPECT_FALSE(ApplyRecordToState(ingest, &state).ok());
}

TEST(ApplyRecordToStateTest, RejectsNonPrefixExpiry) {
  CollectionState state;
  WalRecord ingest;
  ingest.type = WalRecordType::kIngest;
  ingest.dims = 1;
  ingest.base_epoch = 0;
  ingest.coords = {1.0, 2.0, 3.0};
  ASSERT_TRUE(ApplyRecordToState(ingest, &state).ok());
  WalRecord expire;
  expire.type = WalRecordType::kExpire;
  expire.expire_begin = 1;  // window_begin is 0: not a prefix extension
  expire.expire_end = 2;
  EXPECT_FALSE(ApplyRecordToState(expire, &state).ok());
  expire.expire_begin = 0;
  expire.expire_end = 9;  // past the epoch
  EXPECT_FALSE(ApplyRecordToState(expire, &state).ok());
}

TEST(ApplyRecordToStateTest, RejectsDimsMismatch) {
  CollectionState state;
  WalRecord first;
  first.type = WalRecordType::kIngest;
  first.dims = 2;
  first.base_epoch = 0;
  first.coords = {1.0, 2.0};
  ASSERT_TRUE(ApplyRecordToState(first, &state).ok());
  WalRecord second = first;
  second.dims = 3;
  second.base_epoch = 1;
  second.coords = {1.0, 2.0, 3.0};
  EXPECT_FALSE(ApplyRecordToState(second, &state).ok());
}

}  // namespace
}  // namespace dbscout::storage

// CollectionStore lifecycle: recovery round-trips, torn-tail handling,
// compaction + retention, corrupt-snapshot fallback, segment-gap
// detection, and the core durability property — recovering from the
// newest snapshot plus the WAL suffix reconstructs exactly the state of
// folding every record ever logged.

#include "storage/store.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace dbscout::storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

StoreOptions TestOptions(obs::Registry* registry) {
  StoreOptions options;
  options.fsync = FsyncPolicy::kNever;  // tests exercise logic, not disks
  options.snapshot_interval_bytes = 0;  // explicit CompactNow only
  options.registry = registry;
  options.collection = "test";
  return options;
}

WalRecord Ingest(uint16_t dims, uint64_t base_epoch,
                 std::vector<double> coords) {
  WalRecord record;
  record.type = WalRecordType::kIngest;
  record.dims = dims;
  record.base_epoch = base_epoch;
  record.coords = std::move(coords);
  return record;
}

WalRecord Expire(uint64_t begin, uint64_t end) {
  WalRecord record;
  record.type = WalRecordType::kExpire;
  record.expire_begin = begin;
  record.expire_end = end;
  return record;
}

/// Ground truth: fold a full record log into a state from scratch.
CollectionState FoldAll(const std::vector<WalRecord>& records) {
  CollectionState state;
  for (const WalRecord& record : records) {
    EXPECT_TRUE(ApplyRecordToState(record, &state).ok());
  }
  return state;
}

/// What recovery reconstructs: the recovered base plus its suffix.
CollectionState FoldRecovered(const RecoveredCollection& recovered) {
  CollectionState state = recovered.base;
  for (const WalRecord& record : recovered.suffix) {
    EXPECT_TRUE(ApplyRecordToState(record, &state).ok());
  }
  return state;
}

void ExpectSameState(const CollectionState& a, const CollectionState& b) {
  EXPECT_EQ(a.dims, b.dims);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.window_begin, b.window_begin);
  EXPECT_DOUBLE_EQ(a.ttl_seconds, b.ttl_seconds);
  EXPECT_EQ(a.has_plan, b.has_plan);
  EXPECT_EQ(a.coords, b.coords);
}

/// A mixed 40-record log with interleaved expiries and a TTL change.
std::vector<WalRecord> MixedLog() {
  std::vector<WalRecord> records;
  WalRecord create;
  create.type = WalRecordType::kCreate;
  create.dims = 2;
  create.ttl_seconds = 0.0;
  records.push_back(create);
  uint64_t epoch = 0;
  uint64_t window = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<double> coords;
    const size_t count = 1 + static_cast<size_t>(round % 4);
    for (size_t i = 0; i < count * 2; ++i) {
      coords.push_back(static_cast<double>(round) + 0.01 * i);
    }
    records.push_back(Ingest(2, epoch, coords));
    epoch += count;
    if (round % 3 == 2 && window + 1 < epoch) {
      records.push_back(Expire(window, window + 2));
      window += 2;
    }
    if (round == 7) {
      WalRecord configure;
      configure.type = WalRecordType::kConfigure;
      configure.ttl_seconds = 42.0;
      records.push_back(configure);
    }
  }
  return records;
}

TEST(CollectionStoreTest, FreshDirectoryRecoversEmpty) {
  obs::Registry registry;
  RecoveredCollection recovered;
  auto store = CollectionStore::Open(FreshDir("store_fresh"),
                                     TestOptions(&registry), &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(recovered.base.epoch, 0u);
  EXPECT_EQ(recovered.base.dims, 0u);
  EXPECT_TRUE(recovered.suffix.empty());
  EXPECT_TRUE((*store)->Close().ok());
}

TEST(CollectionStoreTest, LoggedRecordsRecoverInOrder) {
  const std::string dir = FreshDir("store_roundtrip");
  obs::Registry registry;
  const std::vector<WalRecord> records = MixedLog();
  {
    RecoveredCollection recovered;
    auto store =
        CollectionStore::Open(dir, TestOptions(&registry), &recovered);
    ASSERT_TRUE(store.ok()) << store.status();
    for (const WalRecord& record : records) {
      ASSERT_TRUE((*store)->LogRecord(record).ok());
    }
    ASSERT_TRUE((*store)->Commit().ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  RecoveredCollection recovered;
  auto store =
      CollectionStore::Open(dir, TestOptions(&registry), &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(recovered.base.epoch, 0u);  // never compacted
  ASSERT_EQ(recovered.suffix.size(), records.size());
  ExpectSameState(FoldRecovered(recovered), FoldAll(records));
  EXPECT_TRUE((*store)->Close().ok());
}

// The property the whole design hangs on: snapshot + WAL suffix is
// indistinguishable from replaying the full WAL, wherever compaction
// strikes in the log.
TEST(CollectionStoreTest, SnapshotPlusSuffixEqualsFullReplay) {
  const std::vector<WalRecord> records = MixedLog();
  const CollectionState expected = FoldAll(records);
  for (size_t compact_at = 0; compact_at <= records.size();
       compact_at += 7) {
    const std::string dir = FreshDir("store_property");
    obs::Registry registry;
    {
      RecoveredCollection recovered;
      auto store =
          CollectionStore::Open(dir, TestOptions(&registry), &recovered);
      ASSERT_TRUE(store.ok()) << store.status();
      for (size_t i = 0; i < records.size(); ++i) {
        if (i == compact_at) {
          ASSERT_TRUE((*store)->CompactNow().ok());
        }
        ASSERT_TRUE((*store)->LogRecord(records[i]).ok());
      }
      ASSERT_TRUE((*store)->Close().ok());
    }
    RecoveredCollection recovered;
    auto store =
        CollectionStore::Open(dir, TestOptions(&registry), &recovered);
    ASSERT_TRUE(store.ok()) << store.status();
    SCOPED_TRACE(::testing::Message()
                 << "compacted after record " << compact_at);
    ExpectSameState(FoldRecovered(recovered), expected);
    if (compact_at > 0) {
      EXPECT_GT(recovered.base.epoch, 0u);  // the snapshot did real work
    }
    EXPECT_TRUE((*store)->Close().ok());
  }
}

TEST(CollectionStoreTest, CorruptNewestSnapshotFallsBackOneGeneration) {
  const std::string dir = FreshDir("store_fallback");
  obs::Registry registry;
  const std::vector<WalRecord> records = MixedLog();
  {
    RecoveredCollection recovered;
    auto store =
        CollectionStore::Open(dir, TestOptions(&registry), &recovered);
    ASSERT_TRUE(store.ok()) << store.status();
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_TRUE((*store)->LogRecord(records[i]).ok());
      if (i == records.size() / 3 || i == 2 * records.size() / 3) {
        ASSERT_TRUE((*store)->CompactNow().ok());
      }
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Truncate the newest snapshot to simulate a crash mid-compaction that
  // somehow survived the atomic rename (e.g. media truncation).
  std::string newest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0 &&
        (newest.empty() || entry.path().string() > newest)) {
      newest = entry.path().string();
    }
  }
  ASSERT_FALSE(newest.empty());
  fs::resize_file(newest, fs::file_size(newest) / 2);

  RecoveredCollection recovered;
  auto store =
      CollectionStore::Open(dir, TestOptions(&registry), &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  ExpectSameState(FoldRecovered(recovered), FoldAll(records));
  EXPECT_TRUE((*store)->Close().ok());
}

TEST(CollectionStoreTest, TornTailIsTruncatedAndAppendable) {
  const std::string dir = FreshDir("store_torn");
  obs::Registry registry;
  const std::vector<WalRecord> records = MixedLog();
  {
    RecoveredCollection recovered;
    auto store =
        CollectionStore::Open(dir, TestOptions(&registry), &recovered);
    ASSERT_TRUE(store.ok()) << store.status();
    for (const WalRecord& record : records) {
      ASSERT_TRUE((*store)->LogRecord(record).ok());
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Simulate a crash mid-append: chop bytes off the active segment.
  const std::string tail = dir + "/wal-000001.log";
  ASSERT_TRUE(fs::exists(tail));
  const auto size = fs::file_size(tail);
  fs::resize_file(tail, size - 3);

  RecoveredCollection recovered;
  auto store =
      CollectionStore::Open(dir, TestOptions(&registry), &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  // The last record was torn off; everything before it survived.
  ASSERT_EQ(recovered.suffix.size(), records.size() - 1);
  // And the reopened store can append new records at the truncated tail.
  const CollectionState state = FoldRecovered(recovered);
  ASSERT_TRUE(
      (*store)->LogRecord(Ingest(2, state.epoch, {9.0, 9.5})).ok());
  ASSERT_TRUE((*store)->Close().ok());

  RecoveredCollection again;
  auto reopened =
      CollectionStore::Open(dir, TestOptions(&registry), &again);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(again.suffix.size(), records.size());
  EXPECT_TRUE((*reopened)->Close().ok());
}

TEST(CollectionStoreTest, CorruptFrameInSuffixIsHardError) {
  const std::string dir = FreshDir("store_corrupt");
  obs::Registry registry;
  {
    RecoveredCollection recovered;
    auto store =
        CollectionStore::Open(dir, TestOptions(&registry), &recovered);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        (*store)->LogRecord(Ingest(2, 0, {1.0, 2.0, 3.0, 4.0})).ok());
    ASSERT_TRUE((*store)->LogRecord(Ingest(2, 2, {5.0, 6.0})).ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Flip a payload byte of the FIRST frame (a complete frame, not a torn
  // tail): recovery must refuse to load rather than serve corrupt points.
  const std::string segment = dir + "/wal-000001.log";
  std::fstream file(segment,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(kWalHeaderBytes + 8 + 4));
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(static_cast<std::streamoff>(kWalHeaderBytes + 8 + 4));
  byte = static_cast<char>(byte ^ 0x10);
  file.write(&byte, 1);
  file.close();

  RecoveredCollection recovered;
  auto store =
      CollectionStore::Open(dir, TestOptions(&registry), &recovered);
  EXPECT_FALSE(store.ok());
}

TEST(CollectionStoreTest, MissingSegmentIsHardError) {
  const std::string dir = FreshDir("store_gap");
  obs::Registry registry;
  {
    RecoveredCollection recovered;
    auto store =
        CollectionStore::Open(dir, TestOptions(&registry), &recovered);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE((*store)->LogRecord(Ingest(2, 0, {1.0, 2.0})).ok());
    ASSERT_TRUE((*store)->CompactNow().ok());  // seals wal-1, opens wal-2
    ASSERT_TRUE((*store)->LogRecord(Ingest(2, 1, {3.0, 4.0})).ok());
    ASSERT_TRUE((*store)->CompactNow().ok());  // seals wal-2, opens wal-3
    ASSERT_TRUE((*store)->LogRecord(Ingest(2, 2, {5.0, 6.0})).ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Retention keeps snap-1 + snap-2 and segments 2..3. Deleting snap-2
  // forces recovery onto snap-1 + segments 2..3; deleting wal-2 as well
  // leaves a gap it must refuse to jump.
  ASSERT_TRUE(fs::remove(dir + "/snap-000002.snap"));
  ASSERT_TRUE(fs::remove(dir + "/wal-000002.log"));
  RecoveredCollection recovered;
  auto store =
      CollectionStore::Open(dir, TestOptions(&registry), &recovered);
  EXPECT_FALSE(store.ok());
}

TEST(CollectionStoreTest, RetentionKeepsTwoGenerations) {
  const std::string dir = FreshDir("store_retention");
  obs::Registry registry;
  RecoveredCollection recovered;
  auto store =
      CollectionStore::Open(dir, TestOptions(&registry), &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  uint64_t epoch = 0;
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(
        (*store)
            ->LogRecord(Ingest(2, epoch, {1.0 * round, 2.0 * round}))
            .ok());
    ++epoch;
    ASSERT_TRUE((*store)->CompactNow().ok());
  }
  ASSERT_TRUE((*store)->Close().ok());
  size_t snapshots = 0;
  size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    snapshots += name.rfind("snap-", 0) == 0 ? 1 : 0;
    segments += name.rfind("wal-", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(snapshots, 2u);  // newest + one fallback generation
  EXPECT_LE(segments, 2u);   // suffix of the fallback + the active tail
}

TEST(CollectionStoreTest, AutoCompactionTriggersOnSegmentSize) {
  const std::string dir = FreshDir("store_autocompact");
  obs::Registry registry;
  StoreOptions options = TestOptions(&registry);
  options.snapshot_interval_bytes = 256;  // tiny: trip after a few records
  RecoveredCollection recovered;
  auto store = CollectionStore::Open(dir, options, &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  uint64_t epoch = 0;
  for (int i = 0; i < 20; ++i) {
    std::vector<double> coords(8, static_cast<double>(i));
    ASSERT_TRUE((*store)->LogRecord(Ingest(2, epoch, coords)).ok());
    epoch += 4;
    ASSERT_TRUE((*store)->Commit().ok());
  }
  ASSERT_TRUE((*store)->Close().ok());
  bool found_snapshot = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("snap-", 0) == 0) {
      found_snapshot = true;
    }
  }
  EXPECT_TRUE(found_snapshot);
}

TEST(CollectionDirNameTest, RoundTripsArbitraryNames) {
  for (const std::string name :
       {"plain", "with space", "dots.and/slashes", "caf\xC3\xA9", "%", "-_"}) {
    const std::string encoded = EncodeCollectionDirName(name);
    EXPECT_EQ(encoded.find('/'), std::string::npos) << encoded;
    auto decoded = DecodeCollectionDirName(encoded);
    ASSERT_TRUE(decoded.ok()) << encoded;
    EXPECT_EQ(*decoded, name);
  }
  EXPECT_FALSE(DecodeCollectionDirName("bad%2").ok());
  EXPECT_FALSE(DecodeCollectionDirName("bad%zz").ok());
}

}  // namespace
}  // namespace dbscout::storage

// WAL framing and scanning: record round-trips, torn-tail truncation
// (clean prefix recovery), and an exhaustive bit-flip sweep asserting
// that no corruption is ever silently decoded — every flip either fails
// the scan or yields a strict prefix of the clean frames (a length-field
// flip can make a complete frame look like a torn tail; what it can
// never do is produce a frame that was not written).

#include "storage/wal.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "grid/regions.h"

namespace dbscout::storage {
namespace {

std::string TestPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

WalRecord IngestRecord(uint16_t dims, uint64_t base_epoch,
                       std::vector<double> coords) {
  WalRecord record;
  record.type = WalRecordType::kIngest;
  record.dims = dims;
  record.base_epoch = base_epoch;
  record.coords = std::move(coords);
  return record;
}

// Writes a small mixed log and returns its frame payloads.
std::vector<std::vector<uint8_t>> WriteMixedLog(const std::string& path) {
  std::vector<WalRecord> records;
  WalRecord create;
  create.type = WalRecordType::kCreate;
  create.dims = 2;
  create.ttl_seconds = 0.5;
  records.push_back(create);
  WalRecord plan;
  plan.type = WalRecordType::kPlan;
  plan.halo = 3;
  plan.stripes = {grid::Stripe{-4, 0}, grid::Stripe{1, 9}};
  records.push_back(plan);
  records.push_back(IngestRecord(2, 0, {0.0, 0.1, 1.0, 1.1, 2.0, 2.1}));
  WalRecord expire;
  expire.type = WalRecordType::kExpire;
  expire.expire_begin = 0;
  expire.expire_end = 2;
  records.push_back(expire);
  WalRecord configure;
  configure.type = WalRecordType::kConfigure;
  configure.ttl_seconds = 2.25;
  records.push_back(configure);
  records.push_back(IngestRecord(2, 3, {5.0, 5.5}));

  auto writer = WalWriter::Create(path, 7);
  EXPECT_TRUE(writer.ok()) << writer.status();
  std::vector<std::vector<uint8_t>> payloads;
  for (const WalRecord& record : records) {
    payloads.push_back(EncodeWalRecord(record));
    EXPECT_TRUE(writer->Append(payloads.back()).ok());
  }
  EXPECT_TRUE(writer->Close().ok());
  return payloads;
}

TEST(WalRecordTest, AllTypesRoundTrip) {
  const std::string path = TestPath("wal_roundtrip.log");
  WriteMixedLog(path);
  auto scan = ScanWalFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->seq, 7u);
  EXPECT_FALSE(scan->torn);
  ASSERT_EQ(scan->frames.size(), 6u);

  auto create = DecodeWalRecord(scan->frames[0]);
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(create->type, WalRecordType::kCreate);
  EXPECT_EQ(create->dims, 2u);
  EXPECT_DOUBLE_EQ(create->ttl_seconds, 0.5);

  auto plan = DecodeWalRecord(scan->frames[1]);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->type, WalRecordType::kPlan);
  EXPECT_EQ(plan->halo, 3);
  ASSERT_EQ(plan->stripes.size(), 2u);
  EXPECT_EQ(plan->stripes[0].slab_lo, -4);
  EXPECT_EQ(plan->stripes[1].slab_hi, 9);

  auto ingest = DecodeWalRecord(scan->frames[2]);
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(ingest->type, WalRecordType::kIngest);
  EXPECT_EQ(ingest->base_epoch, 0u);
  EXPECT_EQ(ingest->coords,
            (std::vector<double>{0.0, 0.1, 1.0, 1.1, 2.0, 2.1}));

  auto expire = DecodeWalRecord(scan->frames[3]);
  ASSERT_TRUE(expire.ok());
  EXPECT_EQ(expire->type, WalRecordType::kExpire);
  EXPECT_EQ(expire->expire_begin, 0u);
  EXPECT_EQ(expire->expire_end, 2u);

  auto configure = DecodeWalRecord(scan->frames[4]);
  ASSERT_TRUE(configure.ok());
  EXPECT_EQ(configure->type, WalRecordType::kConfigure);
  EXPECT_DOUBLE_EQ(configure->ttl_seconds, 2.25);
}

TEST(WalRecordTest, RejectsMalformedPayloads) {
  // Unknown type byte.
  EXPECT_FALSE(DecodeWalRecord(std::vector<uint8_t>{0x42}).ok());
  // Empty payload.
  EXPECT_FALSE(DecodeWalRecord(std::vector<uint8_t>{}).ok());
  // Truncated ingest header.
  auto full = EncodeWalRecord(IngestRecord(2, 5, {1.0, 2.0}));
  EXPECT_FALSE(
      DecodeWalRecord(std::span<const uint8_t>(full.data(), 4)).ok());
  // Trailing bytes.
  full.push_back(0);
  EXPECT_FALSE(DecodeWalRecord(full).ok());
  // Expire with end < begin.
  WalRecord bad;
  bad.type = WalRecordType::kExpire;
  bad.expire_begin = 9;
  bad.expire_end = 3;
  EXPECT_FALSE(DecodeWalRecord(EncodeWalRecord(bad)).ok());
}

TEST(WalScanTest, TornTailIsTruncatedCleanly) {
  const std::string path = TestPath("wal_torn.log");
  WriteMixedLog(path);
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  auto clean_scan = ScanWalFile(path);
  ASSERT_TRUE(clean_scan.ok());
  const size_t frames = clean_scan->frames.size();

  // Cut the file at every length from just-past-header to full: the scan
  // must always succeed with a prefix of the frames, flag every cut that
  // lands mid-frame as torn, and report valid_bytes at a frame boundary.
  for (size_t cut = kWalHeaderBytes; cut <= clean.size(); ++cut) {
    WriteFileBytes(path, std::vector<uint8_t>(clean.begin(),
                                              clean.begin() + cut));
    auto scan = ScanWalFile(path);
    ASSERT_TRUE(scan.ok()) << "cut at " << cut << ": " << scan.status();
    EXPECT_LE(scan->frames.size(), frames);
    EXPECT_EQ(scan->torn, scan->valid_bytes != cut) << "cut at " << cut;
    EXPECT_LE(scan->valid_bytes, cut);
    // Every recovered frame matches the clean log's frame exactly.
    for (size_t i = 0; i < scan->frames.size(); ++i) {
      EXPECT_EQ(scan->frames[i], clean_scan->frames[i]);
    }
  }
}

TEST(WalScanTest, AppendAfterTornTailResumesAtValidOffset) {
  const std::string path = TestPath("wal_resume.log");
  WriteMixedLog(path);
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  // Tear mid-way through the last frame.
  WriteFileBytes(path, std::vector<uint8_t>(clean.begin(),
                                            clean.end() - 5));
  auto scan = ScanWalFile(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(scan->torn);
  const size_t surviving = scan->frames.size();

  auto writer = WalWriter::OpenForAppend(path, scan->valid_bytes);
  ASSERT_TRUE(writer.ok()) << writer.status();
  const auto payload = EncodeWalRecord(IngestRecord(2, 3, {7.0, 7.5}));
  ASSERT_TRUE(writer->Append(payload).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto rescan = ScanWalFile(path);
  ASSERT_TRUE(rescan.ok()) << rescan.status();
  EXPECT_FALSE(rescan->torn);
  ASSERT_EQ(rescan->frames.size(), surviving + 1);
  EXPECT_EQ(rescan->frames.back(), payload);
}

TEST(WalScanTest, BitFlipSweepNeverDecodesCorruptFrames) {
  const std::string path = TestPath("wal_bitflip.log");
  WriteMixedLog(path);
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  auto clean_scan = ScanWalFile(path);
  ASSERT_TRUE(clean_scan.ok());

  // Flip one bit per byte position across the whole file (header and
  // every frame). Acceptable outcomes: the scan errors out, or it
  // returns frames that are all byte-identical to a prefix of the clean
  // log (e.g. a frame-length flip that turns the tail into a "torn"
  // region). A decoded frame that differs from what was written is a
  // correctness failure: recovery would load corrupt points.
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::vector<uint8_t> flipped = clean;
    flipped[byte] ^= 1u << (byte % 8);
    WriteFileBytes(path, flipped);
    auto scan = ScanWalFile(path);
    if (!scan.ok()) {
      continue;  // detected: recovery refuses the file
    }
    ASSERT_LE(scan->frames.size(), clean_scan->frames.size())
        << "flip at byte " << byte;
    for (size_t i = 0; i < scan->frames.size(); ++i) {
      ASSERT_EQ(scan->frames[i], clean_scan->frames[i])
          << "flip at byte " << byte << " corrupted frame " << i;
    }
    // A flip inside the scanned region must not go entirely unnoticed:
    // either some tail got dropped or the scan flagged a tear. (Flips in
    // the seq field of the header change scan->seq, which recovery
    // cross-checks against the filename.)
    if (byte >= kWalHeaderBytes) {
      EXPECT_TRUE(scan->torn ||
                  scan->frames.size() < clean_scan->frames.size())
          << "flip at byte " << byte << " was silently accepted";
    }
  }
  WriteFileBytes(path, clean);
}

TEST(WalScanTest, OversizedLengthFieldIsHardError) {
  const std::string path = TestPath("wal_overlen.log");
  WriteMixedLog(path);
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Overwrite the first frame's length with something past the cap.
  const uint32_t huge = kMaxWalPayload + 1;
  std::memcpy(bytes.data() + kWalHeaderBytes, &huge, 4);
  WriteFileBytes(path, bytes);
  auto scan = ScanWalFile(path);
  EXPECT_FALSE(scan.ok());
}

TEST(WalScanTest, BadMagicIsHardError) {
  const std::string path = TestPath("wal_magic.log");
  WriteMixedLog(path);
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes[0] ^= 0xFF;
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(ScanWalFile(path).ok());
}

TEST(WalWriterTest, CreateRefusesExistingFile) {
  const std::string path = TestPath("wal_exclusive.log");
  auto first = WalWriter::Create(path, 1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Close().ok());
  EXPECT_FALSE(WalWriter::Create(path, 1).ok());
}

}  // namespace
}  // namespace dbscout::storage

// TSan stress test for the dataflow ExecutionContext: many concurrent
// producers recording stage metrics while readers snapshot and reset the
// sink. All mutation goes through the context's mutex, so ThreadSanitizer
// verifies the lock discipline; the count assertions catch lost updates in
// every build mode.

#include "dataflow/context.h"

#include <atomic>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace dbscout::dataflow {
namespace {

TEST(DataflowStressTest, ConcurrentProducersOnContextPool) {
  ExecutionContext ctx(8, 16);
  constexpr int kProducers = 8;
  constexpr int kRecordsPerProducer = 400;
  for (int p = 0; p < kProducers; ++p) {
    ctx.pool().Submit([&ctx, p] {
      for (int i = 0; i < kRecordsPerProducer; ++i) {
        StageMetrics m;
        m.name = "producer-" + std::to_string(p);
        m.seconds = 0.001;
        m.records_in = 1;
        m.records_out = 1;
        m.shuffled_records = static_cast<uint64_t>(i % 3);
        ctx.RecordStage(m);
      }
    });
  }
  ctx.pool().WaitIdle();
  const auto summary = ctx.Summary();
  EXPECT_EQ(summary.stages,
            static_cast<size_t>(kProducers) * kRecordsPerProducer);
  EXPECT_EQ(ctx.stages().size(),
            static_cast<size_t>(kProducers) * kRecordsPerProducer);
}

TEST(DataflowStressTest, ReadersRaceProducers) {
  // Producers on the context pool, readers on a second pool taking repeated
  // snapshots and summaries mid-stream. Snapshot sizes must be monotonic
  // observations between 0 and the final total (no torn vectors, no
  // partially-recorded stages).
  ExecutionContext ctx(4, 8);
  constexpr int kProducers = 4;
  constexpr int kRecordsPerProducer = 500;
  constexpr size_t kTotal =
      static_cast<size_t>(kProducers) * kRecordsPerProducer;
  std::atomic<bool> torn{false};
  ThreadPool readers(3);
  for (int r = 0; r < 3; ++r) {
    readers.Submit([&ctx, &torn] {
      for (int i = 0; i < 200; ++i) {
        const auto snapshot = ctx.stages();
        if (snapshot.size() > kTotal) {
          torn.store(true);
        }
        for (const auto& stage : snapshot) {
          if (stage.records_in != 1) {
            torn.store(true);  // a half-written StageMetrics leaked out
          }
        }
        const auto summary = ctx.Summary();
        if (summary.stages > kTotal) {
          torn.store(true);
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    ctx.pool().Submit([&ctx] {
      for (int i = 0; i < kRecordsPerProducer; ++i) {
        StageMetrics m;
        m.name = "stage";
        m.records_in = 1;
        ctx.RecordStage(m);
      }
    });
  }
  ctx.pool().WaitIdle();
  readers.WaitIdle();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(ctx.stages().size(), kTotal);
}

TEST(DataflowStressTest, ResetRacesRecording) {
  // ResetMetrics fired repeatedly while producers record: the final drain
  // after WaitIdle must leave a consistent (possibly smaller) set, and
  // TSan must see all accesses ordered by the context mutex.
  ExecutionContext ctx(4, 8);
  ThreadPool resetter(1);
  std::atomic<bool> stop{false};
  resetter.Submit([&ctx, &stop] {
    while (!stop.load()) {
      ctx.ResetMetrics();
    }
  });
  for (int p = 0; p < 4; ++p) {
    ctx.pool().Submit([&ctx] {
      for (int i = 0; i < 300; ++i) {
        StageMetrics m;
        m.name = "volatile-stage";
        m.records_in = 1;
        ctx.RecordStage(m);
      }
    });
  }
  ctx.pool().WaitIdle();
  stop.store(true);
  resetter.WaitIdle();
  EXPECT_LE(ctx.stages().size(), 4u * 300u);
}

}  // namespace
}  // namespace dbscout::dataflow

// Concurrency stress for the observability layer, written for
// -DDBSCOUT_SANITIZE=thread (run in every mode, labeled `stress`):
//  - many threads hammering one Counter / Histogram through the registry,
//  - ScopedPhase counters incremented from concurrent workers while the
//    owning recorder publishes to a live registry and trace collector.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/phases/phase_kernels.h"
#include "core/phases/phase_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbscout {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 20000;

TEST(ObsStressTest, CounterUnderContention) {
  obs::Registry registry;
  obs::Counter* counter =
      registry.GetCounter("dbscout_stress_total", "stress counter");
  std::vector<std::thread> threads;  // lint:allow(raw-thread) contention stress needs bare OS threads
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsStressTest, HistogramUnderContention) {
  obs::Registry registry;
  obs::Histogram* hist =
      registry.GetHistogram("dbscout_stress_seconds", "stress histogram",
                            obs::HistogramLayout::Latency());
  std::vector<std::thread> threads;  // lint:allow(raw-thread) contention stress needs bare OS threads
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Observe(1e-6 * ((t + i) % 64));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const auto snap = hist->Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.cumulative.back(), snap.count);
}

TEST(ObsStressTest, ConcurrentRegistrationIsSafe) {
  obs::Registry registry;
  std::vector<std::thread> threads;  // lint:allow(raw-thread) contention stress needs bare OS threads
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        // Half the names collide across threads, half are thread-unique;
        // both paths must be race-free and return stable pointers.
        registry
            .GetCounter("dbscout_shared_total", "h",
                        {{"slot", std::to_string(i % 8)}})
            ->Increment();
        registry
            .GetCounter("dbscout_thread_" + std::to_string(t) + "_total", "h")
            ->Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t shared_total = 0;
  for (const auto& family : registry.Snapshot()) {
    if (family.name == "dbscout_shared_total") {
      for (const auto& series : family.series) {
        shared_total += series.counter;
      }
    }
  }
  EXPECT_EQ(shared_total, static_cast<uint64_t>(kThreads) * 200);
}

TEST(ObsStressTest, ScopedPhaseWithConcurrentCountersPublishes) {
  obs::Registry registry;
  obs::TraceCollector trace;
  core::phases::PhaseRecorder recorder;
  recorder.AttachObservability(core::phases::kEngineParallel, &registry,
                               &trace);
  {
    core::phases::ScopedPhase phase(&recorder,
                                    core::phases::kPhaseCorePoints);
    std::vector<std::thread> threads;  // lint:allow(raw-thread) contention stress needs bare OS threads
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&phase] {
        for (int i = 0; i < kPerThread; ++i) {
          phase.distances.fetch_add(2, std::memory_order_relaxed);
          phase.records.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }  // ~ScopedPhase records and publishes here
  const auto& rows = recorder.phases();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, core::phases::kPhaseCorePoints);
  EXPECT_EQ(rows[0].distance_computations,
            2ull * kThreads * kPerThread);
  EXPECT_EQ(rows[0].records, static_cast<uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.Spans()[0].name, core::phases::kPhaseCorePoints);
  bool found = false;
  for (const auto& family : registry.Snapshot()) {
    if (family.name == "dbscout_phase_distance_computations_total") {
      ASSERT_EQ(family.series.size(), 1u);
      EXPECT_EQ(family.series[0].counter, 2ull * kThreads * kPerThread);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsStressTest, TraceAndMetricsPublishedFromManyRecorders) {
  // Several recorders (as if engines ran back to back) publishing into one
  // registry + trace concurrently, as the service's per-collection engines
  // can.
  obs::Registry registry;
  obs::TraceCollector trace;
  std::vector<std::thread> threads;  // lint:allow(raw-thread) contention stress needs bare OS threads
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &trace] {
      core::phases::PhaseRecorder recorder;
      recorder.AttachObservability(core::phases::kEngineExternal, &registry,
                                   &trace);
      for (int stripe = 0; stripe < 50; ++stripe) {
        recorder.Accumulate(core::phases::kPhaseGrid, 1e-5, 3, 5);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(trace.size(), static_cast<size_t>(kThreads) * 50);
  for (const auto& family : registry.Snapshot()) {
    if (family.name == "dbscout_phase_records_total") {
      ASSERT_EQ(family.series.size(), 1u);
      EXPECT_EQ(family.series[0].counter, 5ull * kThreads * 50);
    }
  }
}

}  // namespace
}  // namespace dbscout

// TSan stress test for the horizontally sharded service: one ingest
// driver streams batches through a 4-shard collection while reader tasks
// hammer SNAPSHOT / QUERY / STATS concurrently. Every published epoch
// must equal the sequential oracle on that prefix — a torn merged
// snapshot, a racy shard-snapshot gather, or a loc-table read racing the
// scatter loop fails here, and TSan sees the coordinator/shard-loop/
// reader interleavings on the shared chunk storage and the atomic
// snapshot pointers.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dbscout.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "testutil.h"

namespace dbscout::service {
namespace {

using core::PointKind;

constexpr size_t kNumPoints = 1000;
constexpr size_t kBatch = 50;
constexpr size_t kShards = 4;

/// Sequential-oracle labelings per epoch, memoized across readers.
class Oracle {
 public:
  Oracle(const PointSet& points, const core::Params& params)
      : points_(points), params_(params) {}

  std::vector<PointKind> KindsAt(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(epoch);
    if (it != cache_.end()) {
      return it->second;
    }
    PointSet prefix(points_.dims());
    for (uint64_t i = 0; i < epoch; ++i) {
      prefix.Add(points_[i]);
    }
    auto detection = core::DetectSequential(prefix, params_);
    EXPECT_TRUE(detection.ok());
    auto kinds = detection.ok() ? detection->kinds : std::vector<PointKind>{};
    cache_.emplace(epoch, kinds);
    return kinds;
  }

 private:
  const PointSet& points_;
  const core::Params params_;
  std::mutex mu_;
  std::map<uint64_t, std::vector<PointKind>> cache_;
};

TEST(ServiceShardedStressTest, MergedSnapshotsExactUnderConcurrentReaders) {
  Rng rng(20260813);
  const PointSet points =
      testing::ClusteredPoints(&rng, kNumPoints, 2, 4, 0.25);
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 6;
  Oracle oracle(points, params);

  obs::Registry registry;
  DetectionService service([&] {
    ServiceOptions options;
    options.params = params;
    options.num_shards = kShards;
    options.registry = &registry;
    return options;
  }());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> reads{0};

  ThreadPool pool(4);  // 1 ingest driver + 3 readers
  pool.Submit([&] {
    for (size_t begin = 0; begin < kNumPoints; begin += kBatch) {
      Request request;
      request.verb = Verb::kIngest;
      request.collection = "stream";
      request.dims = 2;
      for (size_t i = begin; i < begin + kBatch; ++i) {
        for (double v : points[i]) {
          request.coords.push_back(v);
        }
      }
      const Response response = service.Dispatch(request);
      if (!response.status.ok() || response.epoch != begin + kBatch) {
        ++failures;
        break;
      }
    }
    done.store(true, std::memory_order_release);
  });

  for (int reader = 0; reader < 3; ++reader) {
    pool.Submit([&, reader] {
      Rng reader_rng(9000 + reader);
      bool last_pass = false;
      while (true) {
        if (done.load(std::memory_order_acquire)) {
          if (last_pass) {
            break;
          }
          last_pass = true;  // one trailing pass checks the final epoch
        }
        Request snap_req;
        snap_req.verb = Verb::kSnapshot;
        snap_req.collection = "stream";
        const Response snap = service.Dispatch(snap_req);
        if (snap.status.code() == StatusCode::kNotFound) {
          continue;  // first batch not applied yet
        }
        if (!snap.status.ok()) {
          ++failures;
          continue;
        }
        ++reads;
        const uint64_t epoch = snap.snapshot.epoch;
        // Epoch barrier: merged snapshots are only published at batch
        // boundaries, never mid-scatter.
        if (epoch % kBatch != 0 ||
            snap.snapshot.kinds != oracle.KindsAt(epoch)) {
          ++failures;
          continue;
        }
        if (epoch > 0) {
          // QUERY by id routes through the loc table to the home shard;
          // it must agree with the oracle at ITS epoch.
          Request query;
          query.verb = Verb::kQuery;
          query.collection = "stream";
          query.query_by_id = true;
          query.query_id =
              static_cast<uint32_t>(reader_rng.NextBounded(epoch));
          const Response answer = service.Dispatch(query);
          if (!answer.status.ok() ||
              answer.query.kind !=
                  oracle.KindsAt(answer.query.epoch)[query.query_id]) {
            ++failures;
          }
        }
        // STATS scatter-gathers per-shard rows from the same merged
        // snapshot; the gather must be internally consistent.
        Request stats_req;
        stats_req.verb = Verb::kStats;
        stats_req.collection = "stream";
        const Response stats = service.Dispatch(stats_req);
        if (!stats.status.ok() || stats.stats.shards != kShards ||
            stats.stats.shard_rows.size() != kShards) {
          ++failures;
          continue;
        }
        uint64_t held = 0;
        for (const auto& row : stats.stats.shard_rows) {
          held += row.points;
        }
        if (held < stats.stats.live_points) {
          ++failures;  // shards together hold every live point at least once
        }
      }
    });
  }

  pool.WaitIdle();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);

  // Final state is the full stream at the final epoch.
  Request snap_req;
  snap_req.verb = Verb::kSnapshot;
  snap_req.collection = "stream";
  const Response final_snap = service.Dispatch(snap_req);
  ASSERT_TRUE(final_snap.status.ok());
  EXPECT_EQ(final_snap.snapshot.epoch, kNumPoints);
  EXPECT_EQ(final_snap.snapshot.kinds, oracle.KindsAt(kNumPoints));
}

}  // namespace
}  // namespace dbscout::service

// TSan stress test for the detection service's snapshot protocol: one
// ingest driver streams batches through blocking INGESTs while reader
// tasks hammer SNAPSHOT and QUERY concurrently. Every answer carries the
// epoch it was computed at, and the test asserts it equals what
// DetectSequential produces on exactly that prefix of the insertion
// sequence — so a torn snapshot, a racy COW clone, or a label published
// before its batch finished fails in every build mode, and TSan sees the
// reader/writer interleavings on the shared chunk storage.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dbscout.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "testutil.h"

namespace dbscout::service {
namespace {

using core::PointKind;

constexpr size_t kNumPoints = 1200;
constexpr size_t kBatch = 40;

/// Sequential-oracle labelings per epoch, computed lazily and memoized so
/// readers checking the same epoch don't redo the work.
class Oracle {
 public:
  Oracle(const PointSet& points, const core::Params& params)
      : points_(points), params_(params) {}

  std::vector<PointKind> KindsAt(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(epoch);
    if (it != cache_.end()) {
      return it->second;
    }
    auto detection = core::DetectSequential(Prefix(epoch), params_);
    EXPECT_TRUE(detection.ok());
    auto kinds = detection.ok() ? detection->kinds : std::vector<PointKind>{};
    cache_.emplace(epoch, kinds);
    return kinds;
  }

  /// Label the probe would get from the sequential engine on prefix+probe.
  PointKind ProbeKindAt(uint64_t epoch, const std::vector<double>& probe) {
    PointSet appended = Prefix(epoch);
    appended.Add(probe);
    auto detection = core::DetectSequential(appended, params_);
    EXPECT_TRUE(detection.ok());
    return detection.ok() ? detection->kinds.back() : PointKind::kOutlier;
  }

 private:
  PointSet Prefix(uint64_t epoch) const {
    PointSet prefix(points_.dims());
    for (uint64_t i = 0; i < epoch; ++i) {
      prefix.Add(points_[i]);
    }
    return prefix;
  }

  const PointSet& points_;
  const core::Params params_;
  std::mutex mu_;
  std::map<uint64_t, std::vector<PointKind>> cache_;
};

TEST(ServiceStressTest, SnapshotsExactAtEveryEpochUnderConcurrentIngest) {
  Rng rng(20260809);
  const PointSet points =
      testing::ClusteredPoints(&rng, kNumPoints, 2, 3, 0.25);
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 6;
  Oracle oracle(points, params);

  DetectionService service([&] {
    ServiceOptions options;
    options.params = params;
    return options;
  }());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> reads{0};

  ThreadPool pool(4);  // 1 ingest driver + 3 readers
  pool.Submit([&] {
    for (size_t begin = 0; begin < kNumPoints; begin += kBatch) {
      Request request;
      request.verb = Verb::kIngest;
      request.collection = "stream";
      request.dims = 2;
      for (size_t i = begin; i < begin + kBatch; ++i) {
        for (double v : points[i]) {
          request.coords.push_back(v);
        }
      }
      const Response response = service.Dispatch(request);
      if (!response.status.ok() || response.epoch != begin + kBatch) {
        ++failures;
        break;
      }
    }
    done.store(true, std::memory_order_release);
  });

  for (int reader = 0; reader < 3; ++reader) {
    pool.Submit([&, reader] {
      Rng reader_rng(1000 + reader);
      // One trailing iteration after `done` so the final epoch is checked.
      bool last_pass = false;
      while (true) {
        if (done.load(std::memory_order_acquire)) {
          if (last_pass) {
            break;
          }
          last_pass = true;
        }
        Request snap_req;
        snap_req.verb = Verb::kSnapshot;
        snap_req.collection = "stream";
        const Response snap = service.Dispatch(snap_req);
        if (snap.status.code() == StatusCode::kNotFound) {
          continue;  // first batch not applied yet
        }
        if (!snap.status.ok()) {
          ++failures;
          continue;
        }
        ++reads;
        const uint64_t epoch = snap.snapshot.epoch;
        if (epoch % kBatch != 0 ||
            snap.snapshot.kinds != oracle.KindsAt(epoch)) {
          ++failures;
          continue;
        }
        if (epoch > 0) {
          // QUERY by id must agree with the oracle at ITS epoch (which may
          // be newer than the snapshot's).
          Request query;
          query.verb = Verb::kQuery;
          query.collection = "stream";
          query.query_by_id = true;
          query.query_id =
              static_cast<uint32_t>(reader_rng.NextBounded(epoch));
          const Response answer = service.Dispatch(query);
          if (!answer.status.ok() ||
              answer.query.kind !=
                  oracle.KindsAt(answer.query.epoch)[query.query_id]) {
            ++failures;
          }
          // Occasional probe: exact against the sequential engine run on
          // prefix + probe.
          if (reader_rng.NextBounded(8) == 0) {
            Request probe;
            probe.verb = Verb::kQuery;
            probe.collection = "stream";
            probe.query_by_id = false;
            probe.query_point = {reader_rng.Uniform(-10.0, 10.0),
                                 reader_rng.Uniform(-10.0, 10.0)};
            const Response kind = service.Dispatch(probe);
            if (!kind.status.ok() ||
                kind.query.kind !=
                    oracle.ProbeKindAt(kind.query.epoch, probe.query_point)) {
              ++failures;
            }
          }
        }
      }
    });
  }

  pool.WaitIdle();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);

  // Final state is exactly the batch oracle on the full dataset.
  Request final_req;
  final_req.verb = Verb::kSnapshot;
  final_req.collection = "stream";
  const Response final_snap = service.Dispatch(final_req);
  ASSERT_TRUE(final_snap.status.ok());
  EXPECT_EQ(final_snap.snapshot.epoch, kNumPoints);
  EXPECT_EQ(final_snap.snapshot.kinds, oracle.KindsAt(kNumPoints));
}

TEST(ServiceStressTest, AsyncBurstsCoalesceAndDrainExact) {
  // Fire-and-forget bursts from the driver force the apply loop to
  // coalesce multiple queued batches per pass while readers keep loading
  // snapshots; after Drain the labeling must equal the oracle.
  Rng rng(20260810);
  const PointSet points = testing::ClusteredPoints(&rng, 800, 2, 2, 0.3);
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 5;

  ServiceOptions options;
  options.params = params;
  options.max_pending_ingests = 1u << 20;  // never shed in this test
  DetectionService service(options);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  ThreadPool pool(3);
  pool.Submit([&] {
    for (size_t begin = 0; begin < points.size(); begin += 20) {
      std::vector<double> coords;
      for (size_t i = begin; i < begin + 20; ++i) {
        for (double v : points[i]) {
          coords.push_back(v);
        }
      }
      if (!service.IngestAsync("burst", 2, std::move(coords)).ok()) {
        ++failures;
      }
    }
    done.store(true, std::memory_order_release);
  });
  for (int reader = 0; reader < 2; ++reader) {
    pool.Submit([&] {
      while (!done.load(std::memory_order_acquire)) {
        Request request;
        request.verb = Verb::kSnapshot;
        request.collection = "burst";
        const Response snap = service.Dispatch(request);
        if (!snap.status.ok() &&
            snap.status.code() != StatusCode::kNotFound) {
          ++failures;
        }
        // Epochs are batch-aligned even when passes coalesce.
        if (snap.status.ok() && snap.snapshot.epoch % 20 != 0) {
          ++failures;
        }
      }
    });
  }
  pool.WaitIdle();
  service.Drain();
  EXPECT_EQ(failures.load(), 0);

  auto expected = core::DetectSequential(points, params);
  ASSERT_TRUE(expected.ok());
  Request request;
  request.verb = Verb::kSnapshot;
  request.collection = "burst";
  const Response snap = service.Dispatch(request);
  ASSERT_TRUE(snap.status.ok());
  EXPECT_EQ(snap.snapshot.epoch, points.size());
  EXPECT_EQ(snap.snapshot.kinds, expected->kinds);
}

TEST(ServiceStressTest, WindowedIngestExpiryVsReadersStaysConsistent) {
  // Sliding-window variant: a short TTL makes the apply loop interleave
  // prefix expiry (detector Remove + re-derivation) with coalesced inserts
  // while readers hold and walk COW snapshots. TSan sees writer/reader
  // interleavings on the shared chunk storage and the alive mask; in every
  // build mode the structural invariants below must hold for every answer:
  // expiry only ever removes a prefix, so an alive mask is always 0* 1*.
  Rng rng(20260811);
  const PointSet points = testing::ClusteredPoints(&rng, 900, 2, 3, 0.25);
  core::Params params;
  params.eps = 1.0;
  params.min_pts = 5;

  ServiceOptions options;
  options.params = params;
  options.ttl_seconds = 0.02;  // ages whole batches out mid-stream
  options.max_pending_ingests = 1u << 20;
  DetectionService service(options);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> reads{0};

  ThreadPool pool(4);  // 1 ingest driver + 3 readers
  pool.Submit([&] {
    for (size_t begin = 0; begin < points.size(); begin += 30) {
      Request request;
      request.verb = Verb::kIngest;
      request.collection = "window";
      request.dims = 2;
      for (size_t i = begin; i < begin + 30; ++i) {
        for (double v : points[i]) {
          request.coords.push_back(v);
        }
      }
      const Response response = service.Dispatch(request);
      if (!response.status.ok()) {
        ++failures;
        break;
      }
      // Force extra expiry passes between batches (beyond the periodic
      // wakeups) so removals and inserts interleave densely.
      if ((begin / 30) % 5 == 0) {
        service.SweepExpiredNow();
      }
    }
    done.store(true, std::memory_order_release);
  });

  for (int reader = 0; reader < 3; ++reader) {
    pool.Submit([&, reader] {
      Rng reader_rng(3000 + reader);
      bool last_pass = false;
      while (true) {
        if (done.load(std::memory_order_acquire)) {
          if (last_pass) {
            break;
          }
          last_pass = true;
        }
        Request snap_req;
        snap_req.verb = Verb::kSnapshot;
        snap_req.collection = "window";
        const Response snap = service.Dispatch(snap_req);
        if (snap.status.code() == StatusCode::kNotFound) {
          continue;
        }
        if (!snap.status.ok()) {
          ++failures;
          continue;
        }
        ++reads;
        const uint64_t epoch = snap.snapshot.epoch;
        if (epoch % 30 != 0 || snap.snapshot.kinds.size() != epoch ||
            snap.snapshot.alive.size() != epoch) {
          ++failures;
          continue;
        }
        // Prefix expiry: alive flags never go 1 -> 0 along the id axis.
        for (size_t i = 1; i < epoch; ++i) {
          if (snap.snapshot.alive[i] < snap.snapshot.alive[i - 1]) {
            ++failures;
            break;
          }
        }
        Request stats_req;
        stats_req.verb = Verb::kStats;
        stats_req.collection = "window";
        const Response stats = service.Dispatch(stats_req);
        // window_begin is a live atomic and may run ahead of the snapshot
        // the other fields came from, so only snapshot-internal invariants
        // are checked here.
        if (!stats.status.ok() ||
            stats.stats.live_points > stats.stats.num_points ||
            stats.stats.ttl_seconds != 0.02) {
          ++failures;
        }
        if (epoch > 0) {
          // By-id queries answer for expired ids too (last label carried).
          Request query;
          query.verb = Verb::kQuery;
          query.collection = "window";
          query.query_by_id = true;
          query.query_id =
              static_cast<uint32_t>(reader_rng.NextBounded(epoch));
          const Response answer = service.Dispatch(query);
          if (!answer.status.ok()) {
            ++failures;
          }
        }
      }
    });
  }

  pool.WaitIdle();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);

  // Quiesce, then age everything out: the emptied window must equal a
  // fresh detector (no residue from a thousand interleaved removals).
  service.Drain();
  Request configure;
  configure.verb = Verb::kConfigure;
  configure.collection = "window";
  configure.ttl_seconds = 1e-9;
  ASSERT_TRUE(service.Dispatch(configure).status.ok());
  service.SweepExpiredNow();
  Request stats_req;
  stats_req.verb = Verb::kStats;
  stats_req.collection = "window";
  const Response stats = service.Dispatch(stats_req);
  ASSERT_TRUE(stats.status.ok());
  EXPECT_EQ(stats.stats.num_points, points.size());
  EXPECT_EQ(stats.stats.live_points, 0u);
  EXPECT_EQ(stats.stats.window_begin, points.size());
  EXPECT_EQ(stats.stats.num_core, 0u);
  EXPECT_EQ(stats.stats.num_outliers, 0u);
}

// Observability verbs under fire: while stamped INGESTs stream through a
// traced service, reader tasks hammer TRACE (ring dump with varying
// filters) and HEALTH concurrently. TSan watches the span ring's mutex,
// the health gauges' relaxed atomics, and the histogram exemplar slots;
// the assertions pin that dumps are always well-formed and health always
// answers while the writer keeps mutating.
TEST(ServiceStressTest, ConcurrentTraceAndHealthReadersStayConsistent) {
  ServiceOptions options;
  options.params.eps = 1.0;
  options.params.min_pts = 4;
  obs::Registry registry;
  options.registry = &registry;
  obs::TraceCollector trace(512);  // small ring: wraps many times
  options.trace = &trace;
  options.slow_request_seconds = 1e9;  // slow-log path armed, never firing
  DetectionService service(options);

  constexpr size_t kBatches = 60;
  constexpr size_t kReaders = 4;
  std::atomic<bool> done{false};
  ThreadPool pool(kReaders + 1);

  pool.Submit([&] {
    Rng rng(20260809);
    for (size_t b = 0; b < kBatches; ++b) {
      const PointSet batch = testing::UniformPoints(&rng, 25, 2, 0.0, 8.0);
      Request request;
      request.verb = Verb::kIngest;
      request.collection = (b % 2) == 0 ? "even" : "odd";
      request.dims = 2;
      request.coords = batch.values();
      request.context.trace_id = 0x1000 + b;
      const Response response = service.Dispatch(request);
      ASSERT_TRUE(response.status.ok()) << response.status;
      ASSERT_EQ(response.trace_id, 0x1000 + b);
    }
    done.store(true, std::memory_order_release);
  });

  for (size_t r = 0; r < kReaders; ++r) {
    pool.Submit([&, r] {
      uint64_t dumps = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (r % 2 == 0) {
          Request dump;
          dump.verb = Verb::kTrace;
          if (dumps % 3 == 1) {
            dump.collection = "even";  // scope filter
          } else if (dumps % 3 == 2) {
            dump.trace_limit = 16;
          }
          const Response response = service.Dispatch(dump);
          ASSERT_TRUE(response.status.ok()) << response.status;
          // Cheap well-formedness pin; the full JSON checker runs in the
          // non-stress observability test.
          ASSERT_EQ(response.trace.json.rfind("{\"traceEvents\":[", 0), 0u);
          ASSERT_EQ(response.trace.json.back(), '}');
          ASSERT_LE(response.trace.spans_retained, 512u);
        } else {
          Request probe;
          probe.verb = Verb::kHealth;
          const Response response = service.Dispatch(probe);
          ASSERT_TRUE(response.status.ok()) << response.status;
          ASSERT_EQ(response.health.state, HealthState::kReady);
          ASSERT_LE(response.health.collections, 2u);
        }
        ++dumps;
      }
    });
  }

  pool.WaitIdle();
  service.Stop();
  EXPECT_GT(trace.dropped(), 0u);  // the ring really wrapped under load
}

}  // namespace
}  // namespace dbscout::service

// TSan stress test for the shared-memory engine's phase-3/5 cell loops.
// The dataset is deliberately skewed (most points packed into a handful of
// grid cells, the rest scattered across many sparse cells) so that
// ParallelForDynamic's chunk claiming actually rebalances: dense cells keep
// one worker busy while others race ahead through empty neighborhoods —
// exactly the interleaving where a racy label write or core-CSR fill would
// surface under ThreadSanitizer. Results are checked against the sequential
// engine, so a silent race that corrupts output fails in every build mode.

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dbscout.h"
#include "testutil.h"

namespace dbscout::core {
namespace {

// ~85% of points in two tight blobs (few very dense cells), the rest spread
// over a wide area (many cells with 0-2 points).
PointSet SkewedPoints(Rng* rng, size_t n) {
  PointSet ps(2);
  for (size_t i = 0; i < n; ++i) {
    const double pick = rng->NextDouble();
    if (pick < 0.6) {
      ps.Add({rng->NextGaussian() * 0.05, rng->NextGaussian() * 0.05});
    } else if (pick < 0.85) {
      ps.Add({30.0 + rng->NextGaussian() * 0.05,
              30.0 + rng->NextGaussian() * 0.05});
    } else {
      ps.Add({rng->Uniform(-50.0, 50.0), rng->Uniform(-50.0, 50.0)});
    }
  }
  return ps;
}

TEST(SharedEngineStressTest, SkewedCellsMatchSequentialUnderContention) {
  Rng rng(20260806);
  const PointSet ps = SkewedPoints(&rng, 4000);
  Params params;
  params.eps = 1.0;
  params.min_pts = 10;
  auto expected = DetectSequential(ps, params);
  ASSERT_TRUE(expected.ok());
  // Oversubscribed pool (more threads than cores on CI machines) plus
  // repeated runs: each run re-races the phase-3/5 loops.
  ThreadPool pool(8);
  for (int round = 0; round < 8; ++round) {
    auto r = DetectSharedMemory(ps, params, &pool);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->kinds, expected->kinds) << "round " << round;
    ASSERT_EQ(r->outliers, expected->outliers) << "round " << round;
  }
}

TEST(SharedEngineStressTest, ScoresPathRacesAllCells) {
  // compute_scores makes phase 5 visit every cell (including core cells)
  // and exercises the min-distance kernel path plus the core_distance
  // vector, whose slots must be written by exactly one worker.
  Rng rng(20260807);
  const PointSet ps = SkewedPoints(&rng, 2500);
  Params params;
  params.eps = 1.5;
  params.min_pts = 8;
  params.compute_scores = true;
  auto expected = DetectSequential(ps, params);
  ASSERT_TRUE(expected.ok());
  ThreadPool pool(8);
  for (int round = 0; round < 5; ++round) {
    auto r = DetectSharedMemory(ps, params, &pool);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->kinds, expected->kinds) << "round " << round;
    ASSERT_EQ(r->core_distance, expected->core_distance) << "round " << round;
  }
}

TEST(SharedEngineStressTest, ConcurrentDetectionsOnSeparatePools) {
  // Two fully-parallel detections running at once (separate pools, shared
  // immutable input) must not interfere: the engine may only write through
  // its own Detection and locals. A stray static or global would race here.
  // The drivers must be raw threads, not pool tasks: a nested ParallelFor
  // issued from any pool's worker runs inline, which would serialize the
  // engines and defeat the cross-pool race.
  Rng rng(20260808);
  const PointSet ps = SkewedPoints(&rng, 2000);
  Params params;
  params.eps = 1.0;
  params.min_pts = 6;
  auto expected = DetectSequential(ps, params);
  ASSERT_TRUE(expected.ok());
  ThreadPool pool_a(4);
  ThreadPool pool_b(4);
  std::vector<int> mismatches(2, 0);
  ThreadPool* pools[2] = {&pool_a, &pool_b};
  std::vector<std::thread> drivers;  // lint:allow(raw-thread) see above
  for (int slot = 0; slot < 2; ++slot) {
    drivers.emplace_back([&, slot] {
      for (int round = 0; round < 4; ++round) {
        auto r = DetectSharedMemory(ps, params, pools[slot]);
        if (!r.ok() || r->kinds != expected->kinds) {
          ++mismatches[slot];
        }
      }
    });
  }
  for (auto& t : drivers) {
    t.join();
  }
  EXPECT_EQ(mismatches[0], 0);
  EXPECT_EQ(mismatches[1], 0);
}

}  // namespace
}  // namespace dbscout::core

// TSan stress tests for ThreadPool::ParallelForDynamic and the atomic
// chunk-claiming protocol. These run (and must pass) in every build mode,
// but their purpose is a ThreadSanitizer build (-DDBSCOUT_SANITIZE=thread):
// the loop bodies write to plain, non-atomic memory so that any double
// claim, lost completion signal, or premature return from the parallel-for
// shows up as a data race or a failed assertion.

#include "common/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

// Tiny chunks maximize contention on the shared claim counter; every index
// must still be visited exactly once. The non-atomic writes are the race
// detector's bait: two workers claiming the same chunk write the same slot.
TEST(ThreadPoolStressTest, DynamicTinyChunksHammerClaimCounter) {
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint32_t> hits(4096, 0);
    pool.ParallelForDynamic(hits.size(), 1, [&hits](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i] += 1;
      }
    });
    const uint64_t total =
        std::accumulate(hits.begin(), hits.end(), uint64_t{0});
    ASSERT_EQ(total, hits.size()) << "round " << round;
  }
}

// ParallelForDynamic must be a full barrier: writes made inside the loop
// body must be visible to the caller right after it returns, without any
// extra synchronization on the caller's side.
TEST(ThreadPoolStressTest, DynamicPublishesResultsToCaller) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> out(257, 0);
    pool.ParallelForDynamic(out.size(), 3, [&out](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = i * i;
      }
    });
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * i) << "round " << round;
    }
  }
}

// Several client threads (tasks on an outer pool) each drive their own
// dynamic loops on a shared inner pool. Inner calls run inline when issued
// from a pool thread, so this exercises the reentrancy path concurrently
// with direct calls from the main thread.
TEST(ThreadPoolStressTest, ConcurrentClientsShareOnePool) {
  ThreadPool inner(4);
  ThreadPool outer(4);
  std::atomic<uint64_t> grand_total{0};
  for (int client = 0; client < 4; ++client) {
    outer.Submit([&inner, &grand_total] {
      uint64_t local = 0;
      for (int round = 0; round < 10; ++round) {
        std::vector<uint32_t> hits(512, 0);
        inner.ParallelForDynamic(hits.size(), 2,
                                 [&hits](size_t begin, size_t end) {
                                   for (size_t i = begin; i < end; ++i) {
                                     hits[i] += 1;
                                   }
                                 });
        local += std::accumulate(hits.begin(), hits.end(), uint64_t{0});
      }
      grand_total.fetch_add(local);
    });
  }
  for (int round = 0; round < 10; ++round) {
    std::vector<uint32_t> hits(512, 0);
    inner.ParallelForDynamic(hits.size(), 2, [&hits](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i] += 1;
      }
    });
    grand_total.fetch_add(std::accumulate(hits.begin(), hits.end(),
                                          uint64_t{0}));
  }
  outer.WaitIdle();
  EXPECT_EQ(grand_total.load(), uint64_t{5} * 10 * 512);
}

// Interleaves Submit/WaitIdle traffic with dynamic loops on the same pool:
// the completion signalling of ParallelForDynamic must not be confused by
// unrelated queue activity.
TEST(ThreadPoolStressTest, DynamicInterleavedWithPlainSubmits) {
  ThreadPool pool(4);
  std::atomic<uint64_t> submitted_work{0};
  for (int round = 0; round < 20; ++round) {
    for (int s = 0; s < 8; ++s) {
      pool.Submit([&submitted_work] { submitted_work.fetch_add(1); });
    }
    std::vector<uint32_t> hits(301, 0);
    pool.ParallelForDynamic(hits.size(), 4, [&hits](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i] += 1;
      }
    });
    ASSERT_EQ(std::accumulate(hits.begin(), hits.end(), uint64_t{0}),
              hits.size());
  }
  pool.WaitIdle();
  EXPECT_EQ(submitted_work.load(), 20u * 8u);
}

// Construction/destruction churn under load: the destructor must drain the
// queue and join cleanly even when the pool is torn down immediately after
// a burst of work.
TEST(ThreadPoolStressTest, TeardownAfterBurst) {
  for (int round = 0; round < 25; ++round) {
    std::atomic<int> counter{0};
    {
      ThreadPool pool(4);
      for (int i = 0; i < 64; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
      // No WaitIdle: the destructor is responsible for the drain.
    }
    ASSERT_EQ(counter.load(), 64) << "round " << round;
  }
}

}  // namespace
}  // namespace dbscout

#include "testutil.h"

#include <cmath>

namespace dbscout::testing {

std::vector<core::PointKind> BruteForceKinds(const PointSet& points,
                                             double eps, int min_pts) {
  const size_t n = points.size();
  const double eps2 = eps * eps;
  std::vector<uint8_t> is_core(n, 0);
  for (size_t i = 0; i < n; ++i) {
    int count = 0;
    for (size_t j = 0; j < n; ++j) {
      if (points.SquaredDistance(i, j) <= eps2) {
        ++count;
      }
    }
    is_core[i] = count >= min_pts;
  }
  std::vector<core::PointKind> kinds(n, core::PointKind::kOutlier);
  for (size_t i = 0; i < n; ++i) {
    if (is_core[i]) {
      kinds[i] = core::PointKind::kCore;
      continue;
    }
    for (size_t j = 0; j < n; ++j) {
      if (is_core[j] && points.SquaredDistance(i, j) <= eps2) {
        kinds[i] = core::PointKind::kBorder;
        break;
      }
    }
  }
  return kinds;
}

std::vector<uint32_t> BruteForceOutliers(const PointSet& points, double eps,
                                         int min_pts) {
  const auto kinds = BruteForceKinds(points, eps, min_pts);
  std::vector<uint32_t> outliers;
  for (size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i] == core::PointKind::kOutlier) {
      outliers.push_back(static_cast<uint32_t>(i));
    }
  }
  return outliers;
}

PointSet UniformPoints(Rng* rng, size_t n, size_t dims, double lo, double hi) {
  PointSet out(dims);
  out.Reserve(n);
  std::vector<double> coords(dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < dims; ++k) {
      coords[k] = rng->Uniform(lo, hi);
    }
    out.Add(coords);
  }
  return out;
}

PointSet ClusteredPoints(Rng* rng, size_t n, size_t dims, int clusters,
                         double noise_fraction) {
  PointSet out(dims);
  out.Reserve(n);
  std::vector<std::vector<double>> centers(clusters,
                                           std::vector<double>(dims));
  for (auto& center : centers) {
    for (auto& c : center) {
      c = rng->Uniform(-50.0, 50.0);
    }
  }
  std::vector<double> coords(dims);
  for (size_t i = 0; i < n; ++i) {
    if (rng->NextBool(noise_fraction)) {
      for (size_t k = 0; k < dims; ++k) {
        coords[k] = rng->Uniform(-60.0, 60.0);
      }
    } else {
      const auto& center = centers[rng->NextBounded(centers.size())];
      for (size_t k = 0; k < dims; ++k) {
        coords[k] = rng->Gaussian(center[k], 1.5);
      }
    }
    out.Add(coords);
  }
  return out;
}

PointSet LatticePoints(size_t per_side, size_t dims, double step) {
  PointSet out(dims);
  std::vector<size_t> index(dims, 0);
  std::vector<double> coords(dims);
  for (;;) {
    for (size_t k = 0; k < dims; ++k) {
      coords[k] = static_cast<double>(index[k]) * step;
    }
    out.Add(coords);
    size_t k = 0;
    while (k < dims && ++index[k] == per_side) {
      index[k] = 0;
      ++k;
    }
    if (k == dims) {
      break;
    }
  }
  return out;
}

}  // namespace dbscout::testing

#ifndef DBSCOUT_TESTS_TESTUTIL_H_
#define DBSCOUT_TESTS_TESTUTIL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/detection.h"
#include "data/point_set.h"

namespace dbscout::testing {

/// O(n^2) reference implementation of Definitions 1-3: core points via
/// pairwise neighbor counts (the point itself included), outliers as points
/// not within eps of any core point. This is the oracle every DBSCOUT
/// engine, strategy, and baseline equivalence test compares against.
std::vector<core::PointKind> BruteForceKinds(const PointSet& points,
                                             double eps, int min_pts);

/// Outlier indices (ascending) from BruteForceKinds.
std::vector<uint32_t> BruteForceOutliers(const PointSet& points, double eps,
                                         int min_pts);

/// n uniform points in [lo, hi)^dims.
PointSet UniformPoints(Rng* rng, size_t n, size_t dims, double lo, double hi);

/// A mixture of `clusters` Gaussian blobs plus `noise` uniform points over
/// the same bounding region. Good at producing a mix of dense, sparse, and
/// empty cells.
PointSet ClusteredPoints(Rng* rng, size_t n, size_t dims, int clusters,
                         double noise_fraction);

/// Points placed exactly on a lattice of spacing `step` (stresses cell
/// boundary handling: coordinates land on cell edges).
PointSet LatticePoints(size_t per_side, size_t dims, double step);

}  // namespace dbscout::testing

#endif  // DBSCOUT_TESTS_TESTUTIL_H_

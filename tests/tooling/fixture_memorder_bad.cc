// Seeded memory-order violations on the snapshot-publication pattern.
// Expected findings: exactly 3 (relaxed load, order-less store, seq_cst
// store). The waived relaxed load must NOT be reported.

namespace std {
enum memory_order {
  memory_order_relaxed,
  memory_order_consume,
  memory_order_acquire,
  memory_order_release,
  memory_order_acq_rel,
  memory_order_seq_cst
};
template <class T>
struct shared_ptr {
  T* ptr;
};
template <class T>
struct atomic {
  T load(memory_order order = memory_order_seq_cst) const;
  void store(T value, memory_order order = memory_order_seq_cst);
};
}  // namespace std

struct Snapshot {
  int epoch;
};

struct Collection {
  std::atomic<std::shared_ptr<const Snapshot>> snapshot;
};

std::shared_ptr<const Snapshot> ReadRelaxed(Collection* c) {
  return c->snapshot.load(std::memory_order_relaxed);  // finding 1
}

void PublishDefault(Collection* c, std::shared_ptr<const Snapshot> s) {
  c->snapshot.store(s);  // finding 2: defaults to seq_cst
}

void PublishSeqCst(Collection* c, std::shared_ptr<const Snapshot> s) {
  c->snapshot.store(s, std::memory_order_seq_cst);  // finding 3
}

std::shared_ptr<const Snapshot> ReadWaived(Collection* c) {
  // Stats-only read where staleness is fine: waived on the flagged line.
  return c->snapshot.load(std::memory_order_relaxed);  // lint:allow(memory-order)
}

// Known-good snapshot publication: acquire loads, release stores, and a
// relaxed counter that is NOT a shared_ptr (out of the check's scope).
// Expected findings: 0.

namespace std {
enum memory_order {
  memory_order_relaxed,
  memory_order_consume,
  memory_order_acquire,
  memory_order_release,
  memory_order_acq_rel,
  memory_order_seq_cst
};
template <class T>
struct shared_ptr {
  T* ptr;
};
template <class T>
struct atomic {
  T load(memory_order order = memory_order_seq_cst) const;
  void store(T value, memory_order order = memory_order_seq_cst);
};
}  // namespace std

struct Snapshot {
  int epoch;
};

struct Collection {
  std::atomic<std::shared_ptr<const Snapshot>> snapshot;
  std::atomic<unsigned long> queue_depth;
};

std::shared_ptr<const Snapshot> Read(Collection* c) {
  return c->snapshot.load(std::memory_order_acquire);
}

void Publish(Collection* c, std::shared_ptr<const Snapshot> s) {
  c->snapshot.store(s, std::memory_order_release);
}

unsigned long Depth(Collection* c) {
  return c->queue_depth.load(std::memory_order_relaxed);
}

// Seeded hot-path-purity violations (the self-test treats this file as a
// hot-path kernel file). Expected findings: exactly 4 —
//   1. container allocation (push_back on std::vector)
//   2. transitive locking (HelperLocks, defined in the support TU)
//   3. logging (dbscout::internal::EmitLog)
//   4. raw allocation (operator new)
// plus one waived allocation that must NOT be reported.

namespace std {
template <class T>
struct vector {
  void push_back(const T&);
  void clear();
  T* data();
};
}  // namespace std

namespace dbscout {
namespace internal {
void EmitLog(int level);
}  // namespace internal
}  // namespace dbscout

void HelperLocks();
void HelperPure(int* out);

int ScanKernelAllocates(std::vector<int>* scratch) {
  scratch->push_back(1);  // finding 1: allocation
  return 0;
}

void ScanKernelLocksTransitively() {
  HelperLocks();  // finding 2: locking, one hop away
}

void ScanKernelLogs() {
  dbscout::internal::EmitLog(2);  // finding 3: logging
}

int* ScanKernelNews() {
  return new int[4];  // finding 4: allocation (operator new)
}

void ScanKernelWaived(std::vector<int>* scratch) {
  // Builder-style amortized append, explicitly waived:
  scratch->push_back(7);  // lint:allow(hot-path-purity) caller-owned scratch
}

void ScanKernelClean(int* out) {
  HelperPure(out);
  *out *= 2;
}

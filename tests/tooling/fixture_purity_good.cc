// Known-good purity fixture: arithmetic, pointer walks, and calls into the
// pure support helper only. Expected findings: 0.

void HelperPure(int* out);

double KernelDistance(const double* a, const double* b, int dims) {
  double acc = 0.0;
  for (int i = 0; i < dims; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

int KernelCountWithin(const double* block, int n, int dims,
                      const double* probe, double eps_sq) {
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (KernelDistance(block + i * dims, probe, dims) <= eps_sq) {
      ++count;
    }
  }
  return count;
}

void KernelAccumulate(int* out) { HelperPure(out); }

// Support TU for the purity fixtures: helpers the "hot" fixture files call
// into, proving the analyzer follows calls across translation units. This
// file itself is NOT matched by the self-test's hot-path pattern, so its
// violations only surface transitively.
//
// Self-contained std stubs: fixtures are parsed by libclang without any
// include path, so the handful of std entities the checks recognize are
// declared here with the exact qualified names the real headers produce.

namespace std {
struct mutex {
  void lock();
  void unlock();
};
template <class T>
struct lock_guard {
  explicit lock_guard(T&);
  ~lock_guard();
};
}  // namespace std

namespace dbscout {
namespace internal {
struct LogMessage {
  LogMessage(const char* file, int line);
};
void EmitLog(int level);
}  // namespace internal
}  // namespace dbscout

static std::mutex g_support_mu;

// Transitive violation target: a kernel calling this takes a lock.
void HelperLocks() { std::lock_guard<std::mutex> hold(g_support_mu); }

// Pure helper: reachable from kernels without findings.
void HelperPure(int* out) { *out += 1; }

// Seeded discarded-status violations. Expected findings: exactly 3 —
// C-style void cast of a returned Status, static_cast<void> of a Status,
// and a C-style void cast of a Result. The bool cast and the waived line
// must NOT be reported.

namespace dbscout {
struct Status {
  static Status OK();
  bool ok() const;
};
template <class T>
struct Result {
  bool ok() const;
};
}  // namespace dbscout

dbscout::Status DoWork();
dbscout::Result<int> Compute();
bool Flag();

void DiscardsEverything() {
  (void)DoWork();                  // finding 1
  static_cast<void>(DoWork());     // finding 2
  (void)Compute();                 // finding 3
  (void)Flag();                    // bool: fine
  (void)DoWork();  // lint:allow(discarded-status) shutdown best-effort
}

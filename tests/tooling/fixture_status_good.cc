// Known-good status handling: every Status is branched on or returned.
// Expected findings: 0.

namespace dbscout {
struct Status {
  static Status OK();
  bool ok() const;
};
}  // namespace dbscout

dbscout::Status DoWork();

dbscout::Status HandleAll() {
  dbscout::Status status = DoWork();
  if (!status.ok()) {
    return status;
  }
  return dbscout::Status::OK();
}

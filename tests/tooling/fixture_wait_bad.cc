// Seeded lock-across-wait violations. Expected findings: exactly 2 —
// a wait with two RAII locks live, and a predicate-lambda wait overload
// (this file does not match the ThreadPool exemption).

namespace std {
struct mutex {
  void lock();
  void unlock();
};
template <class T>
struct unique_lock {
  explicit unique_lock(T&);
  ~unique_lock();
};
struct condition_variable {
  void wait(unique_lock<mutex>& lock);
  template <class Predicate>
  void wait(unique_lock<mutex>& lock, Predicate pred);
};
}  // namespace std

struct Widget {
  std::mutex state_mu;
  std::mutex io_mu;
  std::condition_variable cv;
  int ready = 0;

  void WaitsWithTwoLocks() {
    std::unique_lock<std::mutex> io(io_mu);
    std::unique_lock<std::mutex> state(state_mu);
    cv.wait(state);  // finding 1: io_mu still held across the wait
  }

  void WaitsOnPredicateLambda() {
    std::unique_lock<std::mutex> state(state_mu);
    cv.wait(state, [this] { return ready != 0; });  // finding 2
  }
};

// Known-good condition wait: exactly one lock, explicit while loop.
// Expected findings: 0.

namespace std {
struct mutex {
  void lock();
  void unlock();
};
template <class T>
struct unique_lock {
  explicit unique_lock(T&);
  ~unique_lock();
};
struct condition_variable {
  void wait(unique_lock<mutex>& lock);
};
}  // namespace std

struct Widget {
  std::mutex state_mu;
  std::condition_variable cv;
  int ready = 0;

  void WaitsCorrectly() {
    std::unique_lock<std::mutex> state(state_mu);
    while (ready == 0) {
      cv.wait(state);
    }
  }
};

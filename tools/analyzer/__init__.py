"""AST-level invariant analyzer for dbscout (libclang python bindings).

Modules:
  core     libclang discovery, compile_commands loading, call-graph build
  checks   the four checks: purity, memory-order, discarded-status,
           lock-across-wait
  analyze  CLI over the real tree (tools/check.sh `analyzer` stage)
  selftest fixture-driven self-test (ctest `analyzer_selftest`)

Everything degrades to a clean SKIP when libclang or the clang python
bindings are absent (exit code 77 for the ctest entry points, a `SKIPPED`
line for check.sh).
"""

#!/usr/bin/env python3
"""AST invariant analyzer over the real tree.

Usage:
    python3 tools/analyzer/analyze.py [--build-dir build] [--root .]
                                      [--checks purity,memory-order,...]
                                      [--skip-exit-code N]

Drives libclang over compile_commands.json, builds the cross-TU call graph,
and runs the four checks (see checks.py). Exit codes:
    0   clean (or SKIPPED: no libclang — prints a SKIPPED line so
        tools/check.sh records SKIP, not PASS)
    1   findings
    2   usage / missing compile_commands.json

With --skip-exit-code 77 the SKIP case exits 77 instead (the ctest
SKIP_RETURN_CODE protocol).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from analyzer import checks, core  # noqa: E402

ALL_CHECKS = ("purity", "memory-order", "discarded-status",
              "lock-across-wait")


def run(build_dir: str, root: str, selected) -> list:
    cindex = core.load_cindex()
    assert cindex is not None
    src_root = os.path.normpath(os.path.join(root, "src"))
    sources = core.load_compdb(build_dir)
    if not sources:
        print("analyzer: no src/ entries in compile_commands.json",
              file=sys.stderr)
        return []
    waivers = core.WaiverIndex()
    findings = []
    graph = {}
    for path, args in sources:
        tu = core.parse_tu(cindex, path, args)
        if "memory-order" in selected:
            findings.extend(
                checks.check_memory_order(cindex, tu, waivers, src_root))
        if "discarded-status" in selected:
            findings.extend(
                checks.check_discarded_status(cindex, tu, waivers, src_root))
        if "lock-across-wait" in selected:
            findings.extend(
                checks.check_lock_across_wait(cindex, tu, waivers, src_root))
        if "purity" in selected:
            for usr, info in core.collect_functions(
                    cindex, tu, src_root).items():
                graph.setdefault(usr, info)
    if "purity" in selected:
        findings.extend(checks.check_purity(graph, waivers))
    # Headers are parsed once per including TU; dedupe repeated findings.
    unique = sorted(set(findings),
                    key=lambda f: (f.file, f.line, f.check, f.message))
    return unique


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/)")
    parser.add_argument("--checks", default=",".join(ALL_CHECKS),
                        help="comma-separated subset of: "
                             + ", ".join(ALL_CHECKS))
    parser.add_argument("--skip-exit-code", type=int, default=0,
                        help="exit code when libclang is unavailable "
                             "(default 0, with a SKIPPED line; ctest "
                             "entries pass 77)")
    args = parser.parse_args()

    selected = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in selected if c not in ALL_CHECKS]
    if unknown:
        print(f"analyzer: unknown check(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    if core.load_cindex() is None:
        print("analyzer: SKIPPED (no usable libclang python bindings; "
              "install python3-clang + libclang, or set "
              "CLANG_LIBRARY_FILE)")
        return args.skip_exit_code

    compdb = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.isfile(compdb):
        print(f"analyzer: {compdb} not found; configure the build tree "
              f"first (cmake -B {args.build_dir} -S {args.root})",
              file=sys.stderr)
        return 2

    findings = run(args.build_dir, args.root, selected)
    root_prefix = os.path.normpath(os.path.abspath(args.root)) + os.sep
    for f in findings:
        text = str(f)
        if text.startswith(root_prefix):
            text = text[len(root_prefix):]
        print(text)
    if findings:
        print(f"analyzer: {len(findings)} finding(s) across "
              f"{len(selected)} check(s)")
        return 1
    print(f"analyzer: OK ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The four AST checks.

purity             Transitive hot-path purity: no locking, logging, or
                   syscalls reachable from any function defined in a
                   hot-path file (src/simd/, phase_kernels.*,
                   insert_kernels.*), and no allocation inside those files
                   (builders waive specific lines with
                   lint:allow(hot-path-purity)).
memory-order       Loads/stores on atomic<shared_ptr<...>> snapshot
                   pointers must say memory_order_acquire /
                   memory_order_release explicitly — a missing argument is
                   a silent seq_cst fence on the hot path, relaxed is a
                   publication bug.
discarded-status   No Status / Result value discarded through a cast to
                   void; handle it or DBSCOUT_CHECK it.
lock-across-wait   No condition_variable wait while a second lock is held
                   (lock-ordering deadlock bait), and no predicate-lambda
                   wait overload outside the ThreadPool implementation —
                   the annotated CondVar contract is an explicit while
                   loop under exactly one mutex.

Waiver syntax everywhere: `lint:allow(<check-name>)` on the flagged line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from . import core
from .core import CallSite, Finding, FunctionInfo, Op, WaiverIndex

# ---------------------------------------------------------------------------
# purity
# ---------------------------------------------------------------------------

PURITY = "hot-path-purity"

#: Callee names (suffix match on the qualified name, or exact spelling)
#: that mean the hot path took a lock.
_LOCK_NAME_RE = re.compile(
    r"(?:std::(?:recursive_|shared_|timed_)*mutex"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)"
    r"|dbscout::Mutex\b|dbscout::MutexLock|dbscout::CondVar"
    r"|pthread_(?:mutex|rwlock|cond)_\w+)")

#: Logging machinery: constructing a LogMessage (what DBSCOUT_LOG/CHECK
#: expand to) or calling the emitter directly.
_LOG_NAME_RE = re.compile(
    r"dbscout::internal::(?:LogMessage|EmitLog|CheckMessage)")

#: Syscall-ish leaf functions (I/O, process control, clock-free sleeps).
_SYSCALL_NAMES = frozenset({
    "fopen", "fclose", "fread", "fwrite", "fprintf", "printf", "fputs",
    "puts", "fflush", "open", "close", "read", "write", "socket", "send",
    "recv", "connect", "accept", "abort", "exit", "_exit", "system",
    "sleep", "usleep", "nanosleep",
})

#: Allocator entry points (direct).
_ALLOC_NAMES = frozenset({"malloc", "calloc", "realloc", "free", "strdup",
                          "aligned_alloc", "posix_memalign"})

#: Container members that may allocate, when invoked on a std:: container.
_ALLOC_MEMBERS = frozenset({
    "push_back", "emplace_back", "resize", "reserve", "insert", "emplace",
    "append", "assign", "push_front", "emplace_front",
})

_STD_CONTAINER_RE = re.compile(
    r"std::(?:vector|deque|basic_string|map|unordered_map|set|"
    r"unordered_set|list|multimap|multiset)\b")


def _classify_call(site: CallSite) -> Optional[Tuple[str, str]]:
    """(category, description) when the call is forbidden on the hot path."""
    qual = site.qualified
    name = site.name
    if qual and _LOCK_NAME_RE.search(qual):
        return "locking", f"acquires a lock via {qual}"
    if site.base_type and _LOCK_NAME_RE.search(site.base_type):
        return "locking", f"{name}() on {site.base_type}"
    if qual and _LOG_NAME_RE.search(qual):
        return "logging", f"logs via {qual} (DBSCOUT_LOG/DBSCOUT_CHECK)"
    if name in _SYSCALL_NAMES and "::" not in qual.replace(
            "std::", "", 1).replace(name, ""):
        return "syscall", f"calls {name}()"
    if name in _ALLOC_NAMES:
        return "allocation", f"calls {name}()"
    return None


def _classify_alloc(site: CallSite) -> Optional[str]:
    if site.name in _ALLOC_MEMBERS and (
            _STD_CONTAINER_RE.search(site.base_type or "")):
        return f"{site.name}() on {site.base_type} may allocate"
    return None


def check_purity(graph: Dict[str, FunctionInfo], waivers: WaiverIndex,
                 hot_file_re: re.Pattern = core.HOT_PATH_FILE_RE
                 ) -> List[Finding]:
    """Walks the call graph from every function defined in a hot-path file.

    Locking / logging / syscalls are flagged wherever they are reachable
    (transitively through any src-defined callee). Allocation is flagged in
    functions defined in hot-path files themselves — callees outside those
    files own their allocation contracts — with per-line waivers for the
    builder kernels that allocate by design.
    """
    findings: List[Finding] = []
    seen_sites: Set[Tuple[str, str, int, str]] = set()
    by_usr = graph

    entries = [f for f in graph.values() if hot_file_re.search(f.file)]

    def visit(fn: FunctionInfo, entry: FunctionInfo, chain: Tuple[str, ...],
              visited: Set[str]) -> None:
        if fn.usr in visited:
            return
        visited.add(fn.usr)
        in_hot_file = bool(hot_file_re.search(fn.file))
        for op in fn.ops:
            if op.kind in ("new", "delete") and in_hot_file:
                cat, desc = "allocation", op.detail
            elif op.kind == "lock-decl":
                cat, desc = "locking", f"constructs {op.detail}"
            else:
                continue
            _emit(fn, op.file, op.line, cat, desc, entry, chain)
        for site in fn.calls:
            forbidden = _classify_call(site)
            if forbidden is None and in_hot_file:
                alloc = _classify_alloc(site)
                if alloc is not None:
                    forbidden = ("allocation", alloc)
            if forbidden is not None:
                _emit(fn, site.file, site.line, forbidden[0], forbidden[1],
                      entry, chain)
                continue
            callee = by_usr.get(site.usr)
            if callee is not None:
                visit(callee, entry, chain + (callee.qualified,), visited)

    def _emit(fn: FunctionInfo, file: str, line: int, category: str,
              desc: str, entry: FunctionInfo, chain: Tuple[str, ...]) -> None:
        if waivers.waived(file, line, PURITY):
            return
        # Key on category, not description: a `MutexLock l(mu)` is both a
        # lock-typed declaration and a constructor call on the same line —
        # one violation, not two.
        key = (entry.usr, file, line, category)
        if key in seen_sites:
            return
        seen_sites.add(key)
        findings.append(Finding(
            file, line, PURITY,
            f"{category} reachable from hot-path kernel "
            f"{entry.qualified}(): {desc}",
            chain=chain))

    for entry in entries:
        visit(entry, entry, (entry.qualified,), set())
    return findings


# ---------------------------------------------------------------------------
# memory-order
# ---------------------------------------------------------------------------

MEMORY_ORDER = "memory-order"

_ORDER_TOKEN_RE = re.compile(r"\bmemory_order_(\w+)\b")
_ATOMIC_SNAPSHOT_RE = re.compile(r"atomic<.*shared_ptr<")


def _walk_calls(cindex, node, fn):
    K = cindex.CursorKind
    if node.kind == K.CALL_EXPR:
        fn(node)
    for child in node.get_children():
        _walk_calls(cindex, child, fn)


def check_memory_order(cindex, tu, waivers: WaiverIndex,
                       root: str) -> List[Finding]:
    """load() must say acquire, store() must say release, on every
    atomic<shared_ptr<...>> (the snapshot-publication pattern). A missing
    order argument defaults to seq_cst — stronger than needed and silently
    slower; relaxed breaks publication; seq_cst hides the intent."""
    findings: List[Finding] = []
    root_norm = root.replace("\\", "/").rstrip("/") + "/"

    def on_call(node):
        file = core.cursor_file(node)
        if not file.startswith(root_norm):
            return
        name, base_type = core._member_call_parts(cindex, node)
        if name not in ("load", "store"):
            return
        if not _ATOMIC_SNAPSHOT_RE.search(base_type or ""):
            return
        line = node.location.line
        if waivers.waived(file, line, MEMORY_ORDER):
            return
        orders = _ORDER_TOKEN_RE.findall(" ".join(core.call_tokens(node)))
        want = "acquire" if name == "load" else "release"
        if not orders:
            findings.append(Finding(
                file, line, MEMORY_ORDER,
                f"{name}() on {base_type} has no explicit memory order "
                f"(defaults to seq_cst); snapshot pointers use "
                f"memory_order_{want}"))
        elif orders != [want]:
            findings.append(Finding(
                file, line, MEMORY_ORDER,
                f"{name}() on {base_type} uses memory_order_{orders[0]}; "
                f"snapshot publication requires memory_order_{want}"))

    _walk_calls(cindex, tu.cursor, on_call)
    return findings


# ---------------------------------------------------------------------------
# discarded-status
# ---------------------------------------------------------------------------

DISCARDED_STATUS = "discarded-status"

_STATUS_TYPE_RE = re.compile(r"(?:^|::)(?:Status|Result<)")


def check_discarded_status(cindex, tu, waivers: WaiverIndex,
                           root: str) -> List[Finding]:
    """(void)expr / static_cast<void>(expr) where expr is a Status or
    Result silences the [[nodiscard]] contract; the regex linter catches
    textual `(void)` but not casts laundered through typedefs or
    functional notation."""
    K = cindex.CursorKind
    TK = cindex.TypeKind
    cast_kinds = {K.CSTYLE_CAST_EXPR, K.CXX_STATIC_CAST_EXPR,
                  K.CXX_FUNCTIONAL_CAST_EXPR}
    findings: List[Finding] = []
    root_norm = root.replace("\\", "/").rstrip("/") + "/"

    def visit(node):
        if node.kind in cast_kinds and node.type.kind == TK.VOID:
            file = core.cursor_file(node)
            if file.startswith(root_norm):
                children = list(node.get_children())
                if children:
                    sub = children[-1].type.get_canonical().spelling
                    if _STATUS_TYPE_RE.search(sub):
                        line = node.location.line
                        if not waivers.waived(file, line, DISCARDED_STATUS):
                            findings.append(Finding(
                                file, line, DISCARDED_STATUS,
                                f"cast to void discards a value of type "
                                f"{sub}; handle the status or CHECK it"))
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    return findings


# ---------------------------------------------------------------------------
# lock-across-wait
# ---------------------------------------------------------------------------

LOCK_ACROSS_WAIT = "lock-across-wait"

_WAIT_NAMES = frozenset({"wait", "wait_for", "wait_until", "Wait", "WaitFor"})
_CV_TYPE_RE = re.compile(r"condition_variable|\bCondVar\b")
_POOL_FILE_RE = re.compile(r"(?:^|/)thread_pool\.(?:cc|h)$")
_RAII_LOCK_RE = re.compile(
    r"(?:std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bMutexLock\b)")


def check_lock_across_wait(cindex, tu, waivers: WaiverIndex,
                           root: str) -> List[Finding]:
    """Two rules at every condition-variable wait call:

    1. At most one RAII lock may be live in the enclosing scopes — waiting
       with a second mutex held blocks every user of that mutex for the
       whole wait (and is one lock-ordering inversion away from deadlock).
    2. The predicate-lambda overload (wait(lock, [..]{...})) is reserved
       for the ThreadPool implementation; everywhere else the contract is
       the explicit while-loop under the annotated Mutex, which the clang
       thread-safety analysis can actually see through.
    """
    K = cindex.CursorKind
    findings: List[Finding] = []
    root_norm = root.replace("\\", "/").rstrip("/") + "/"

    def scan(node, live_locks: List[Tuple[str, int]]):
        for child in node.get_children():
            kind = child.kind
            if kind == K.VAR_DECL:
                try:
                    type_spelling = child.type.spelling
                except Exception:
                    type_spelling = ""
                if _RAII_LOCK_RE.search(type_spelling):
                    live_locks.append((type_spelling, child.location.line))
            elif kind == K.CALL_EXPR:
                name, base_type = core._member_call_parts(cindex, child)
                if name in _WAIT_NAMES and _CV_TYPE_RE.search(
                        base_type or ""):
                    file = core.cursor_file(child)
                    line = child.location.line
                    in_scope = (file.startswith(root_norm)
                                and not _POOL_FILE_RE.search(file)
                                and not waivers.waived(
                                    file, line, LOCK_ACROSS_WAIT))
                    if in_scope and len(live_locks) >= 2:
                        held = ", ".join(
                            f"{t} (line {ln})" for t, ln in live_locks)
                        findings.append(Finding(
                            file, line, LOCK_ACROSS_WAIT,
                            f"{name}() with {len(live_locks)} locks held "
                            f"[{held}]; release the outer lock before "
                            f"waiting"))
                    try:
                        num_args = len(list(child.get_arguments()))
                    except Exception:
                        num_args = 0
                    predicate_arity = 2 if name in ("wait", "Wait") else 3
                    if in_scope and num_args >= predicate_arity:
                        findings.append(Finding(
                            file, line, LOCK_ACROSS_WAIT,
                            f"predicate-lambda {name}() overload outside "
                            f"the ThreadPool idiom; write the explicit "
                            f"while-loop so -Wthread-safety can check the "
                            f"predicate's guarded reads"))
            if kind == K.COMPOUND_STMT:
                scan(child, list(live_locks))
            else:
                scan(child, live_locks)

    scan(tu.cursor, [])
    return findings

"""libclang infrastructure: discovery, parsing, call graph, waivers.

The analyzer is correctness tooling, not a build dependency: when the clang
python bindings or libclang itself are missing, load_cindex() returns None
and every entry point reports SKIPPED instead of failing. All consumers must
go through load_cindex() so the probe (and its library-path fallback) runs
exactly once.
"""

from __future__ import annotations

import ctypes.util
import json
import os
import re
import shlex
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Exit code ctest interprets as SKIP (SKIP_RETURN_CODE in tests/CMakeLists).
SKIP_EXIT = 77

#: Same waiver syntax as tools/lint_invariants.py: a finding whose source
#: line carries `lint:allow(<check>)` is suppressed.
WAIVER_RE = re.compile(r"lint:allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

#: The hot-path files whose functions are purity entry points (mirrors
#: HOT_PATH_FILE_RE in tools/lint_invariants.py).
HOT_PATH_FILE_RE = re.compile(
    r"(?:^|/)src/(?:simd/[^/]+\.(?:cc|cpp|h|hpp)"
    r"|core/phases/(?:phase_kernels|insert_kernels)\.(?:cc|cpp|h|hpp))$")

_CINDEX = None
_PROBED = False


def load_cindex():
    """Returns the clang.cindex module with a working libclang, or None."""
    global _CINDEX, _PROBED
    if _PROBED:
        return _CINDEX
    _PROBED = True
    try:
        from clang import cindex
    except ImportError:
        return None
    override = os.environ.get("CLANG_LIBRARY_FILE")
    if override:
        cindex.Config.set_library_file(override)
    else:
        # The bindings default to plain `libclang.so`, which most distros
        # only ship in versioned form; probe the sonames before first use
        # (Config must not be touched after Index.create()).
        found = None
        for name in ("clang", "clang-20", "clang-19", "clang-18", "clang-17",
                     "clang-16", "clang-15", "clang-14"):
            found = ctypes.util.find_library(name)
            if found:
                break
        if found:
            cindex.Config.set_library_file(found)
    try:
        cindex.Index.create()
    except Exception:  # LibclangError, OSError: no usable library
        return None
    _CINDEX = cindex
    return _CINDEX


@dataclass(frozen=True)
class Finding:
    """One diagnostic: `file:line: [check] message`."""
    file: str
    line: int
    check: str
    message: str
    chain: Tuple[str, ...] = ()

    def __str__(self) -> str:
        s = f"{self.file}:{self.line}: [{self.check}] {self.message}"
        if self.chain:
            s += f" (via {' -> '.join(self.chain)})"
        return s


class WaiverIndex:
    """Lazy per-file cache of lint:allow() waiver lines."""

    def __init__(self) -> None:
        self._by_file: Dict[str, Dict[int, List[str]]] = {}

    def _load(self, path: str) -> Dict[int, List[str]]:
        cached = self._by_file.get(path)
        if cached is not None:
            return cached
        waivers: Dict[int, List[str]] = {}
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                for i, line in enumerate(f, 1):
                    m = WAIVER_RE.search(line)
                    if m:
                        waivers[i] = [r.strip() for r in m.group(1).split(",")]
        except OSError:
            pass
        self._by_file[path] = waivers
        return waivers

    def waived(self, path: str, line: int, check: str) -> bool:
        return check in self._load(path).get(line, [])


# ---------------------------------------------------------------------------
# compile_commands.json
# ---------------------------------------------------------------------------

#: Flags meaningful to a libclang parse. Everything else (codegen, warning
#: config, -o/-c bookkeeping) is dropped — gcc-only flags would otherwise
#: error the parse.
_KEEP_WITH_VALUE = ("-I", "-D", "-U", "-isystem", "-iquote", "-include")
_KEEP_PREFIX = ("-std=", "-I", "-D", "-U", "-isystem", "-iquote", "-m")


def _sanitize_args(arguments: List[str]) -> List[str]:
    out: List[str] = []
    skip_next = False
    for arg in arguments[1:]:  # [0] is the compiler
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o", "-c"):
            skip_next = arg == "-o"
            continue
        if arg in _KEEP_WITH_VALUE:
            out.append(arg)
            skip_next = False
            continue
        if arg.startswith(_KEEP_PREFIX):
            out.append(arg)
    return out


def load_compdb(build_dir: str,
                source_re: Optional[re.Pattern] = None
                ) -> List[Tuple[str, List[str]]]:
    """(source_path, clang_args) for every compile_commands.json entry whose
    source matches `source_re` (default: everything under .../src/)."""
    path = os.path.join(build_dir, "compile_commands.json")
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    out = []
    for entry in entries:
        src = os.path.normpath(
            os.path.join(entry["directory"], entry["file"]))
        rel = src.replace(os.sep, "/")
        if source_re is not None:
            if not source_re.search(rel):
                continue
        elif "/src/" not in rel:
            continue
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            args = shlex.split(entry["command"])
        out.append((src, _sanitize_args(args)))
    return out


# ---------------------------------------------------------------------------
# Parsing and the call graph
# ---------------------------------------------------------------------------

def parse_tu(cindex, path: str, args: List[str]):
    """Parses one TU; returns the TranslationUnit (never raises on
    diagnostics — the real compiler owns error reporting)."""
    index = cindex.Index.create()
    return index.parse(path, args=args)


def qualified_name(cursor) -> str:
    parts: List[str] = []
    c = cursor
    while c is not None and c.kind is not None:
        try:
            from clang.cindex import CursorKind
            if c.kind == CursorKind.TRANSLATION_UNIT:
                break
        except Exception:
            break
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def cursor_file(cursor) -> str:
    loc = cursor.location
    if loc is None or loc.file is None:
        return ""
    return os.path.normpath(loc.file.name).replace(os.sep, "/")


@dataclass
class CallSite:
    """One call expression inside a function body."""
    line: int
    file: str
    name: str            # member or function spelling, e.g. "push_back"
    qualified: str       # best-effort qualified name of the callee
    usr: str             # callee USR ("" when unresolved)
    base_type: str       # canonical type of `x` in x.f(...); "" otherwise
    num_args: int


@dataclass
class Op:
    """A non-call operation the checks care about (new/delete/lock decls)."""
    line: int
    file: str
    kind: str            # "new" | "delete" | "lock-decl"
    detail: str


@dataclass
class FunctionInfo:
    usr: str
    name: str
    qualified: str
    file: str
    line: int
    calls: List[CallSite] = field(default_factory=list)
    ops: List[Op] = field(default_factory=list)


_FUNCTION_KINDS = None
_LOCK_TYPE_RE = re.compile(
    r"(?:std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bdbscout::MutexLock\b|\bMutexLock\b)")


def _function_kinds(cindex):
    global _FUNCTION_KINDS
    if _FUNCTION_KINDS is None:
        K = cindex.CursorKind
        _FUNCTION_KINDS = {
            K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR,
            K.FUNCTION_TEMPLATE, K.CONVERSION_FUNCTION,
        }
    return _FUNCTION_KINDS


def _member_call_parts(cindex, node) -> Tuple[str, str]:
    """(member_name, canonical_base_type) for x.f(...) calls; ("", "")
    when the callee is not a member access (or cannot be resolved)."""
    K = cindex.CursorKind
    children = list(node.get_children())
    if not children:
        return "", ""
    callee = children[0]
    # Unwrap implicit casts around the member reference.
    while callee.kind == K.UNEXPOSED_EXPR:
        inner = list(callee.get_children())
        if not inner:
            break
        callee = inner[0]
    if callee.kind != K.MEMBER_REF_EXPR:
        return "", ""
    base_children = list(callee.get_children())
    base_type = ""
    if base_children:
        try:
            base_type = base_children[0].type.get_canonical().spelling
        except Exception:
            base_type = ""
    return callee.spelling or "", base_type


def collect_functions(cindex, tu, root: str) -> Dict[str, FunctionInfo]:
    """All function definitions located under `root`, with their call sites
    and interesting ops. Lambdas and local classes fold into the enclosing
    function (which is what transitive purity wants: the kernel owns what
    its lambdas do)."""
    K = cindex.CursorKind
    root_norm = os.path.normpath(root).replace(os.sep, "/") + "/"
    functions: Dict[str, FunctionInfo] = {}

    def in_root(path: str) -> bool:
        return path.startswith(root_norm)

    def record_body(node, info: FunctionInfo) -> None:
        for child in node.get_children():
            kind = child.kind
            file = cursor_file(child)
            line = child.location.line if child.location else 0
            if kind == K.CALL_EXPR:
                ref = child.referenced
                name, base_type = _member_call_parts(cindex, child)
                try:
                    num_args = len(list(child.get_arguments()))
                except Exception:
                    num_args = 0
                site = CallSite(
                    line=line, file=file,
                    name=name or (ref.spelling if ref is not None else
                                  child.spelling) or "",
                    qualified=qualified_name(ref) if ref is not None else "",
                    usr=(ref.get_usr() or "") if ref is not None else "",
                    base_type=base_type, num_args=num_args)
                info.calls.append(site)
            elif kind == K.CXX_NEW_EXPR:
                info.ops.append(Op(line, file, "new", "operator new"))
            elif kind == K.CXX_DELETE_EXPR:
                info.ops.append(Op(line, file, "delete", "operator delete"))
            elif kind == K.VAR_DECL:
                try:
                    type_spelling = child.type.spelling
                except Exception:
                    type_spelling = ""
                if _LOCK_TYPE_RE.search(type_spelling):
                    info.ops.append(
                        Op(line, file, "lock-decl", type_spelling))
            record_body(child, info)

    def visit(node) -> None:
        kind = node.kind
        if kind in _function_kinds(cindex) and node.is_definition():
            file = cursor_file(node)
            if in_root(file):
                usr = node.get_usr() or f"{file}:{node.location.line}"
                if usr not in functions:
                    info = FunctionInfo(
                        usr=usr, name=node.spelling or "",
                        qualified=qualified_name(node), file=file,
                        line=node.location.line)
                    functions[usr] = info
                    record_body(node, info)
            return  # bodies handled above; no nested free functions in C++
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    return functions


def build_graph(cindex, sources: Iterable[Tuple[str, List[str]]],
                root: str) -> Dict[str, FunctionInfo]:
    """Merged function map over many TUs (first definition wins, which is
    fine: ODR makes duplicates identical for our purposes)."""
    graph: Dict[str, FunctionInfo] = {}
    for path, args in sources:
        tu = parse_tu(cindex, path, args)
        for usr, info in collect_functions(cindex, tu, root).items():
            graph.setdefault(usr, info)
    return graph


def call_tokens(node) -> List[str]:
    """Token spellings of a cursor's extent (memory-order inspection)."""
    try:
        return [t.spelling for t in node.get_tokens()]
    except Exception:
        return []

#!/usr/bin/env python3
"""Self-test for the AST analyzer: runs every check against the seeded
fixtures under tests/tooling/ and asserts exact diagnostic counts.

Exit codes:
  0  all checks produced exactly the expected findings
  1  a count or location mismatch (details on stdout)
  77 libclang python bindings unavailable (SKIPPED; matches ctest
     SKIP_RETURN_CODE)
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from analyzer import checks, core  # noqa: E402

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "tooling")

# The purity fixture pretends fixture_purity_bad.cc / fixture_purity_good.cc
# are hot-path kernel files; the support TU is deliberately not hot, so its
# violations only surface through the call graph.
FIXTURE_HOT_RE = re.compile(r"fixture_purity_(?:bad|good)\.cc$")

PARSE_ARGS = ["-std=c++17"]


def fixture(name):
    return os.path.join(FIXTURE_DIR, name)


def parse(cindex, name):
    path = fixture(name)
    tu = core.parse_tu(cindex, path, PARSE_ARGS)
    errors = [d for d in tu.diagnostics if d.severity >= 3]
    if errors:
        raise RuntimeError("fixture %s failed to parse: %s" %
                           (name, "; ".join(str(d) for d in errors)))
    return tu


def run_purity(cindex, waivers, names):
    graph = {}
    for name in names:
        tu = parse(cindex, name)
        for usr, info in core.collect_functions(
                cindex, tu, FIXTURE_DIR).items():
            graph.setdefault(usr, info)
    return checks.check_purity(graph, waivers, hot_file_re=FIXTURE_HOT_RE)


def expect(failures, label, findings, want_lines):
    """Assert findings hit exactly the expected (file, line) pairs."""
    got = sorted((os.path.basename(f.file), f.line) for f in findings)
    want = sorted(want_lines)
    if got != want:
        failures.append("%s: expected findings at %s, got %s" %
                        (label, want, got))
        for f in findings:
            print("  %s" % f)


def main():
    cindex = core.load_cindex()
    if cindex is None:
        print("analyzer selftest: SKIPPED (no usable libclang python "
              "bindings; install python3-clang + libclang, or set "
              "CLANG_LIBRARY_FILE)")
        return core.SKIP_EXIT

    waivers = core.WaiverIndex()
    failures = []

    # --- hot-path-purity -------------------------------------------------
    bad = run_purity(cindex, waivers,
                     ["fixture_purity_bad.cc", "fixture_purity_support.cc"])
    expect(failures, "purity/bad", bad, [
        ("fixture_purity_bad.cc", 28),      # push_back allocation
        ("fixture_purity_support.cc", 34),  # transitive lock in HelperLocks
        ("fixture_purity_bad.cc", 37),      # EmitLog logging
        ("fixture_purity_bad.cc", 41),      # operator new
    ])
    good = run_purity(cindex, waivers,
                      ["fixture_purity_good.cc", "fixture_purity_support.cc"])
    expect(failures, "purity/good", good, [])

    # --- memory-order ----------------------------------------------------
    tu = parse(cindex, "fixture_memorder_bad.cc")
    bad = checks.check_memory_order(cindex, tu, waivers, FIXTURE_DIR)
    expect(failures, "memory-order/bad", bad, [
        ("fixture_memorder_bad.cc", 34),  # relaxed load
        ("fixture_memorder_bad.cc", 38),  # order-less store (seq_cst)
        ("fixture_memorder_bad.cc", 42),  # explicit seq_cst store
    ])
    tu = parse(cindex, "fixture_memorder_good.cc")
    good = checks.check_memory_order(cindex, tu, waivers, FIXTURE_DIR)
    expect(failures, "memory-order/good", good, [])

    # --- discarded-status ------------------------------------------------
    tu = parse(cindex, "fixture_status_bad.cc")
    bad = checks.check_discarded_status(cindex, tu, waivers, FIXTURE_DIR)
    expect(failures, "discarded-status/bad", bad, [
        ("fixture_status_bad.cc", 22),  # (void)Status
        ("fixture_status_bad.cc", 23),  # static_cast<void>(Status)
        ("fixture_status_bad.cc", 24),  # (void)Result<int>
    ])
    tu = parse(cindex, "fixture_status_good.cc")
    good = checks.check_discarded_status(cindex, tu, waivers, FIXTURE_DIR)
    expect(failures, "discarded-status/good", good, [])

    # --- lock-across-wait ------------------------------------------------
    tu = parse(cindex, "fixture_wait_bad.cc")
    bad = checks.check_lock_across_wait(cindex, tu, waivers, FIXTURE_DIR)
    expect(failures, "lock-across-wait/bad", bad, [
        ("fixture_wait_bad.cc", 31),  # two locks live across the wait
        ("fixture_wait_bad.cc", 36),  # predicate-lambda overload
    ])
    tu = parse(cindex, "fixture_wait_good.cc")
    good = checks.check_lock_across_wait(cindex, tu, waivers, FIXTURE_DIR)
    expect(failures, "lock-across-wait/good", good, [])

    if failures:
        for line in failures:
            print("FAIL %s" % line)
        print("analyzer selftest: %d mismatch(es)" % len(failures))
        return 1
    print("analyzer selftest: OK "
          "(purity, memory-order, discarded-status, lock-across-wait)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Bench regression gate: re-runs bench_service and bench_kernels with their
# artifact-recording defaults and compares the fresh numbers against the
# checked-in BENCH_service.json / BENCH_kernels.json. A throughput metric
# more than GATE_TOLERANCE (default 10%) below the committed value — or a
# gated latency more than GATE_LATENCY_FACTOR (default 2x) above it — fails
# the gate.
#
# Only steady metrics are gated. Throughputs (points/s, Mpts/s) are stable
# on an idle machine; microsecond-scale latency percentiles are quantized
# by the clock and flap at +-50%, so they get the looser factor. Metrics
# present in only one of the two files (e.g. a section newly added by this
# commit and not yet re-recorded) are reported as SKIP, not failed.
#
# Usage:
#   tools/bench_gate.sh [build-dir]     # default build dir: build
#   GATE_TOLERANCE=0.15 tools/bench_gate.sh
#
# Exits non-zero on any regression. Run on an otherwise idle machine: a
# concurrent compile on a small box can alone cost 2x throughput.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TOLERANCE="${GATE_TOLERANCE:-0.10}"
LATENCY_FACTOR="${GATE_LATENCY_FACTOR:-2.0}"

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j "${JOBS:-$(nproc)}" \
  --target bench_service bench_kernels bench_load

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_benches() {
  echo "==> bench_service (fresh run)"
  "$BUILD_DIR"/bench/bench_service > "$tmp/service.json"
  echo "==> bench_load (fresh run)"
  # bench_load emits {"load": {...}}; fold that section into the fresh
  # service document so both compare against the one committed
  # BENCH_service.json artifact.
  "$BUILD_DIR"/bench/bench_load > "$tmp/load.json"
  python3 - "$tmp" <<'EOF'
import json, sys
tmp = sys.argv[1]
with open(f"{tmp}/service.json") as f:
    service = json.load(f)
with open(f"{tmp}/load.json") as f:
    service["load"] = json.load(f)["load"]
with open(f"{tmp}/service.json", "w") as f:
    json.dump(service, f)
EOF
  echo "==> bench_kernels (fresh run)"
  # bench_kernels prints human-readable text on stdout and writes its JSON
  # artifact as BENCH_kernels.json in the *current directory* — run it from
  # the temp dir so the fresh run cannot clobber the committed artifact.
  local bench_kernels_bin
  bench_kernels_bin="$(cd "$BUILD_DIR" && pwd)/bench/bench_kernels"
  (cd "$tmp" && "$bench_kernels_bin")
  mv "$tmp/BENCH_kernels.json" "$tmp/kernels.json"
}

compare() {
  python3 - "$tmp" "$TOLERANCE" "$LATENCY_FACTOR" <<'EOF'
import json
import sys

tmp, tolerance, lat_factor = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])

# (file pair, dotted path, kind). kind "higher" gates fresh < old*(1-tol);
# "lower" gates fresh > old*lat_factor.
GATES = [
    ("service", "ingest.async_points_per_sec", "higher"),
    ("service", "ingest.blocking_points_per_sec", "higher"),
    ("service", "windowed.points_per_sec", "higher"),
    ("service", "sharded.shards1_points_per_sec", "higher"),
    ("service", "sharded.shardsN_points_per_sec", "higher"),
    ("service", "durable.never_points_per_sec", "higher"),
    ("service", "durable.interval_points_per_sec", "higher"),
    ("service", "query.by_id.p50_us", "lower"),
    ("service", "query.probe.p50_us", "lower"),
    # Open-loop TCP load (bench_load): the offered rate must stay
    # sustainable and the p99s bounded. p999 is recorded but not gated —
    # a single scheduler hiccup owns that percentile at this sample size.
    ("service", "load.achieved_rps", "higher"),
    ("service", "load.ingest.p99_us", "lower"),
    ("service", "load.query.p99_us", "lower"),
    ("kernels", "end_to_end.phase35_speedup", "higher"),
]
# Every micro kernel row's dispatched throughput is gated too.
def micro_rows(doc):
    for row in doc.get("micro", []):
        yield f"micro[{row['kernel']}/d{row['dims']}].dispatched_mpts", row["dispatched_mpts"]

def lookup(doc, path):
    cur = doc
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur

docs = {}
for name, committed in (("service", "BENCH_service.json"),
                        ("kernels", "BENCH_kernels.json")):
    with open(committed) as f:
        old = json.load(f)
    with open(f"{tmp}/{name}.json") as f:
        new = json.load(f)
    docs[name] = (old, new)

failures = []
rows = []
def check(name, path, kind, old_v, new_v):
    if old_v is None or new_v is None:
        rows.append((name, path, old_v, new_v, "SKIP"))
        return
    if kind == "higher":
        ok = new_v >= old_v * (1.0 - tolerance)
    else:
        ok = new_v <= old_v * lat_factor
    rows.append((name, path, old_v, new_v, "PASS" if ok else "FAIL"))
    if not ok:
        failures.append(path)

for name, path, kind in GATES:
    old, new = docs[name]
    check(name, path, kind, lookup(old, path), lookup(new, path))

old_k, new_k = docs["kernels"]
new_micro = dict(micro_rows(new_k))
for label, old_v in micro_rows(old_k):
    check("kernels", label, "higher", old_v, new_micro.get(label))

width = max(len(r[1]) for r in rows)
for name, path, old_v, new_v, verdict in rows:
    old_s = "-" if old_v is None else f"{old_v:.1f}"
    new_s = "-" if new_v is None else f"{new_v:.1f}"
    print(f"  {verdict}  {path:<{width}}  committed={old_s}  fresh={new_s}")

if failures:
    print(f"bench_gate: {len(failures)} regression(s) beyond tolerance "
          f"{tolerance:.0%} (latency factor {lat_factor}x)")
    sys.exit(1)
print("bench_gate: all gated metrics within tolerance")
EOF
}

# A single scheduler hiccup on a loaded runner can sink one metric by
# 10-15%; a genuine regression sinks it on every run. One retry of the
# full bench pass separates the two.
run_benches
if ! compare; then
  echo "==> bench_gate: regression reported; retrying once to rule out noise"
  run_benches
  compare
fi

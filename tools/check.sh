#!/usr/bin/env bash
# Single entry point for every correctness gate in the repo:
#
#   1. tier1        Release build + full ctest suite        (build/)
#   2. asan-ubsan   ASan+UBSan build + full ctest suite     (build-asan/)
#   3. tsan         TSan build + common/core/dataflow/
#                   service/stress test subset (`ctest -L`) (build-tsan/)
#   4. clang-tidy   tools/run_clang_tidy.sh over src/       (needs build/)
#   5. lint         tools/lint_invariants.py (+ self-test)
#   6. analyzer     tools/analyzer/: libclang AST checks (purity,
#                   memory-order, discarded-status, lock-across-wait)
#                   plus the fixture self-test            (needs build/)
#   7. thread-safety  clang -Wthread-safety -Werror build of the
#                   annotated targets                     (build-tsa/)
#   8. bench-gate   tools/bench_gate.sh: fresh bench_service/bench_kernels
#                   runs vs the checked-in BENCH_*.json, fail on >10%
#                   regression. Run on an idle machine.
#
# Prints a per-stage summary table and exits non-zero if any stage failed.
# Stages that cannot run in this environment (e.g. no clang-tidy binary)
# report SKIP, not PASS.
#
# Usage:
#   tools/check.sh            # everything
#   tools/check.sh tier1 lint # just the named stages
#   JOBS=8 tools/check.sh     # override parallelism (default: nproc)
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
TSAN_LABELS='^(common|core|dataflow|service|stress)$'

ALL_STAGES=(tier1 asan-ubsan tsan clang-tidy lint analyzer thread-safety bench-gate)
if [ $# -gt 0 ]; then
  STAGES=("$@")
else
  STAGES=("${ALL_STAGES[@]}")
fi

NAMES=()
RESULTS=()
TIMES=()
FAILED=0

log="$(mktemp -d)/stage.log"

record() {  # name result seconds
  NAMES+=("$1")
  RESULTS+=("$2")
  TIMES+=("$3")
  if [ "$2" = "FAIL" ]; then
    FAILED=1
  fi
}

run_stage() {  # name: runs stage_<name>, records result, echoes the log on failure
  local name="$1" rc=0 start end
  echo "==> stage: $name"
  start=$SECONDS
  "stage_${name//-/_}" > "$log" 2>&1 || rc=$?
  end=$SECONDS
  if [ $rc -eq 0 ]; then
    if grep -q "SKIPPED" "$log"; then
      record "$name" "SKIP" "$((end - start))"
      tail -2 "$log"
    else
      record "$name" "PASS" "$((end - start))"
    fi
  else
    record "$name" "FAIL" "$((end - start))"
    cat "$log"
  fi
}

stage_tier1() {
  cmake -B build -S . &&
  cmake --build build -j "$JOBS" &&
  ctest --test-dir build -j "$JOBS" --output-on-failure
}

stage_asan_ubsan() {
  cmake -B build-asan -S . -G Ninja -DDBSCOUT_SANITIZE=address,undefined &&
  cmake --build build-asan -j "$JOBS" --target tests/all &&
  ctest --test-dir build-asan -j "$JOBS" --output-on-failure
}

stage_tsan() {
  cmake -B build-tsan -S . -G Ninja -DDBSCOUT_SANITIZE=thread &&
  cmake --build build-tsan -j "$JOBS" --target tests/all &&
  ctest --test-dir build-tsan -j "$JOBS" --output-on-failure -L "$TSAN_LABELS"
}

stage_clang_tidy() {
  # Needs the tier1 build tree for compile_commands.json; configure it if
  # this stage runs standalone.
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . || return $?
  fi
  tools/run_clang_tidy.sh build
}

stage_lint() {
  python3 tools/lint_invariants.py --self-test &&
  python3 tools/lint_invariants.py --root .
}

stage_analyzer() {
  # Fixture self-test first (exit 77 = SKIP: no libclang bindings), then
  # the real tree. analyze.py prints its own SKIPPED line with exit 0.
  python3 tools/analyzer/selftest.py
  local rc=$?
  if [ $rc -eq 77 ]; then
    return 0  # the SKIPPED line is already in the log
  elif [ $rc -ne 0 ]; then
    return $rc
  fi
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . || return $?
  fi
  python3 tools/analyzer/analyze.py --build-dir build --root .
}

stage_thread_safety() {
  # Clang-only: the thread-safety annotations in src/common/thread_annotations.h
  # compile to nothing under gcc, so this stage needs a real clang.
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "thread-safety: SKIPPED (clang++ not found)"
    return 0
  fi
  CC=clang CXX=clang++ cmake -B build-tsa -S . -DDBSCOUT_THREAD_SAFETY=ON &&
  cmake --build build-tsa -j "$JOBS" --target \
    dbscout_common dbscout_grid dbscout_core dbscout_dataflow \
    dbscout_obs dbscout_service
}

stage_bench_gate() {
  # Needs the tier1 build tree (configures one if missing).
  tools/bench_gate.sh build
}

for s in "${STAGES[@]}"; do
  case "$s" in
    tier1|asan-ubsan|tsan|clang-tidy|lint|analyzer|thread-safety|bench-gate) run_stage "$s" ;;
    *)
      echo "check.sh: unknown stage '$s' (known: ${ALL_STAGES[*]})" >&2
      exit 2
      ;;
  esac
done

echo
echo "┌───────────────┬────────┬─────────┐"
printf "│ %-13s │ %-6s │ %7s │\n" "stage" "result" "seconds"
echo "├───────────────┼────────┼─────────┤"
for i in "${!NAMES[@]}"; do
  printf "│ %-13s │ %-6s │ %7s │\n" "${NAMES[$i]}" "${RESULTS[$i]}" "${TIMES[$i]}"
done
echo "└───────────────┴────────┴─────────┘"

exit $FAILED

// Minimal command-line client for dbscout_serve. One action per
// invocation:
//
//   dbscout_client --port=P --collection=C --ingest=FILE [--format=csv|binary]
//   dbscout_client --port=P --collection=C --query=X,Y[,Z...] [--score]
//   dbscout_client --port=P --collection=C --query-id=I [--score]
//   dbscout_client --port=P --collection=C --stats
//   dbscout_client --port=P --collection=C --snapshot
//   dbscout_client --port=P --collection=C --set-ttl=SECONDS
//   dbscout_client --port=P --metrics
//
// Output is line-oriented key=value, grep-friendly for scripts
// (tools/serve_smoke.sh asserts against it). --metrics is the exception:
// it prints the raw Prometheus text-format scrape of the whole service.

#include <iostream>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "data/io.h"
#include "service/client.h"

namespace {

const char* FlagValue(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) {
      return true;
    }
  }
  return false;
}

int Usage() {
  std::cerr
      << "usage: dbscout_client --port=P --collection=C "
         "(--ingest=FILE [--format=csv|binary] | --query=X,Y[,...] "
         "[--score] | --query-id=I [--score] | --stats | --snapshot | "
         "--set-ttl=SECONDS), or dbscout_client --port=P --metrics "
         "[--host=H]\n";
  return 2;
}

dbscout::Result<dbscout::PointSet> LoadPoints(const std::string& path,
                                              const std::string& format) {
  const bool csv =
      format == "csv" ||
      (format.empty() && path.size() >= 4 &&
       path.compare(path.size() - 4, 4, ".csv") == 0);
  return csv ? dbscout::LoadPointsCsv(path) : dbscout::LoadPointsBinary(path);
}

const char* KindName(dbscout::core::PointKind kind) {
  switch (kind) {
    case dbscout::core::PointKind::kCore:
      return "core";
    case dbscout::core::PointKind::kBorder:
      return "border";
    case dbscout::core::PointKind::kOutlier:
      return "outlier";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using dbscout::ParseDouble;
  using dbscout::ParseUint64;
  using dbscout::Split;
  namespace service = dbscout::service;

  const char* port_text = FlagValue(argc, argv, "port");
  const char* collection = FlagValue(argc, argv, "collection");
  const bool want_metrics = HasFlag(argc, argv, "metrics");
  // --metrics scrapes the whole service, so it takes no collection.
  if (port_text == nullptr || (collection == nullptr && !want_metrics)) {
    return Usage();
  }
  auto port = ParseUint64(port_text);
  if (!port.ok()) {
    return Usage();
  }
  const char* host_text = FlagValue(argc, argv, "host");
  const std::string host = host_text != nullptr ? host_text : "127.0.0.1";

  auto client =
      service::Client::Connect(host, static_cast<uint16_t>(*port));
  if (!client.ok()) {
    std::cerr << "dbscout_client: " << client.status() << "\n";
    return 1;
  }
  const bool want_score = HasFlag(argc, argv, "score");

  if (want_metrics) {
    auto text = client->Metrics();
    if (!text.ok()) {
      std::cerr << "dbscout_client: " << text.status() << "\n";
      return 1;
    }
    std::cout << *text;
    return 0;
  }

  if (const char* path = FlagValue(argc, argv, "ingest")) {
    const char* format = FlagValue(argc, argv, "format");
    auto points = LoadPoints(path, format != nullptr ? format : "");
    if (!points.ok()) {
      std::cerr << "dbscout_client: " << points.status() << "\n";
      return 1;
    }
    auto epoch = client->Ingest(collection,
                                static_cast<uint16_t>(points->dims()),
                                points->values());
    if (!epoch.ok()) {
      std::cerr << "dbscout_client: " << epoch.status() << "\n";
      return 1;
    }
    std::cout << "epoch=" << *epoch << "\n";
    return 0;
  }

  if (const char* coords_text = FlagValue(argc, argv, "query")) {
    std::vector<double> point;
    for (std::string_view field : Split(coords_text, ',')) {
      auto value = ParseDouble(field);
      if (!value.ok()) {
        return Usage();
      }
      point.push_back(*value);
    }
    auto answer = client->QueryPoint(collection, point, want_score);
    if (!answer.ok()) {
      std::cerr << "dbscout_client: " << answer.status() << "\n";
      return 1;
    }
    std::cout << "kind=" << KindName(answer->kind)
              << " epoch=" << answer->epoch;
    if (answer->has_score) {
      std::cout << " score=" << answer->score;
    }
    std::cout << "\n";
    return 0;
  }

  if (const char* id_text = FlagValue(argc, argv, "query-id")) {
    auto id = ParseUint64(id_text);
    if (!id.ok()) {
      return Usage();
    }
    auto answer = client->QueryId(collection, static_cast<uint32_t>(*id),
                                  want_score);
    if (!answer.ok()) {
      std::cerr << "dbscout_client: " << answer.status() << "\n";
      return 1;
    }
    std::cout << "kind=" << KindName(answer->kind)
              << " epoch=" << answer->epoch;
    if (answer->has_score) {
      std::cout << " score=" << answer->score;
    }
    std::cout << "\n";
    return 0;
  }

  if (const char* ttl_text = FlagValue(argc, argv, "set-ttl")) {
    auto ttl = ParseDouble(ttl_text);
    if (!ttl.ok()) {
      return Usage();
    }
    auto applied = client->Configure(collection, *ttl);
    if (!applied.ok()) {
      std::cerr << "dbscout_client: " << applied.status() << "\n";
      return 1;
    }
    std::cout << "ttl=" << *applied << "\n";
    return 0;
  }

  if (HasFlag(argc, argv, "stats")) {
    auto stats = client->Stats(collection);
    if (!stats.ok()) {
      std::cerr << "dbscout_client: " << stats.status() << "\n";
      return 1;
    }
    std::cout << "epoch=" << stats->epoch << " points=" << stats->num_points
              << " core=" << stats->num_core
              << " outliers=" << stats->num_outliers
              << " cells=" << stats->num_cells
              << " shed=" << stats->admission_rejections
              << " live=" << stats->live_points
              << " window-begin=" << stats->window_begin
              << " queue-depth=" << stats->queue_depth
              << " ttl=" << stats->ttl_seconds
              << " shards=" << stats->shards
              << " uptime=" << stats->uptime_seconds << "\n";
    if (stats->shards > 1) {
      for (const auto& row : stats->shard_rows) {
        std::cout << "shard " << row.shard << " points=" << row.points
                  << " epoch=" << row.epoch
                  << " queue-depth=" << row.queue_depth << "\n";
      }
    }
    for (const auto& row : stats->phases) {
      std::cout << "phase " << row.name << " seconds=" << row.seconds
                << " dist-comps=" << row.distance_comps
                << " records=" << row.records << "\n";
    }
    return 0;
  }

  if (HasFlag(argc, argv, "snapshot")) {
    auto snapshot = client->Snapshot(collection);
    if (!snapshot.ok()) {
      std::cerr << "dbscout_client: " << snapshot.status() << "\n";
      return 1;
    }
    size_t outliers = 0;
    for (auto kind : snapshot->kinds) {
      if (kind == dbscout::core::PointKind::kOutlier) {
        ++outliers;
      }
    }
    std::cout << "epoch=" << snapshot->epoch << " core=" << snapshot->num_core
              << " outliers=" << outliers << " cells=" << snapshot->num_cells
              << "\n";
    return 0;
  }

  return Usage();
}

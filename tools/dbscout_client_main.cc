// Minimal command-line client for dbscout_serve. One action per
// invocation:
//
//   dbscout_client --port=P --collection=C --ingest=FILE [--format=csv|binary]
//   dbscout_client --port=P --collection=C --query=X,Y[,Z...] [--score]
//   dbscout_client --port=P --collection=C --query-id=I [--score]
//   dbscout_client --port=P --collection=C --stats
//   dbscout_client --port=P --collection=C --snapshot
//   dbscout_client --port=P --collection=C --set-ttl=SECONDS
//   dbscout_client --port=P --metrics
//   dbscout_client --port=P --health
//   dbscout_client --port=P --trace-dump [--collection=C] [--span-name=N]
//                  [--trace-id=HEX] [--trace-limit=K]
//
// Output is line-oriented key=value, grep-friendly for scripts
// (tools/serve_smoke.sh asserts against it). Two exceptions: --metrics
// prints the raw Prometheus text-format scrape, and --trace-dump prints
// Chrome trace-event JSON (pipe to a file, open in Perfetto) after one
// "trace retained=N dropped=M" summary line on stderr.
//
// --trace stamps the request with a fresh trace id (printed as
// trace=HEX) so a follow-up --trace-dump --trace-id=HEX isolates that
// request's spans. Only use it against trace-aware servers: the stamp
// sets the verb high bit, which pre-trace servers reject.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "data/io.h"
#include "service/client.h"

namespace {

const char* FlagValue(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) {
      return true;
    }
  }
  return false;
}

int Usage() {
  std::cerr
      << "usage: dbscout_client --port=P --collection=C "
         "(--ingest=FILE [--format=csv|binary] | --query=X,Y[,...] "
         "[--score] | --query-id=I [--score] | --stats | --snapshot | "
         "--set-ttl=SECONDS), or dbscout_client --port=P "
         "(--metrics | --health | --trace-dump [--collection=C] "
         "[--span-name=N] [--trace-id=HEX] [--trace-limit=K]) [--host=H]; "
         "add --trace to stamp the request with a trace id\n";
  return 2;
}

dbscout::Result<dbscout::PointSet> LoadPoints(const std::string& path,
                                              const std::string& format) {
  const bool csv =
      format == "csv" ||
      (format.empty() && path.size() >= 4 &&
       path.compare(path.size() - 4, 4, ".csv") == 0);
  return csv ? dbscout::LoadPointsCsv(path) : dbscout::LoadPointsBinary(path);
}

const char* HealthStateName(dbscout::service::HealthState state) {
  switch (state) {
    case dbscout::service::HealthState::kReady:
      return "ready";
    case dbscout::service::HealthState::kNotReady:
      return "not-ready";
    case dbscout::service::HealthState::kDegraded:
      return "degraded";
  }
  return "?";
}

const char* RecoveryStateName(dbscout::service::RecoveryState state) {
  switch (state) {
    case dbscout::service::RecoveryState::kNone:
      return "none";
    case dbscout::service::RecoveryState::kRecovering:
      return "recovering";
    case dbscout::service::RecoveryState::kDone:
      return "done";
    case dbscout::service::RecoveryState::kFailed:
      return "failed";
  }
  return "?";
}

const char* KindName(dbscout::core::PointKind kind) {
  switch (kind) {
    case dbscout::core::PointKind::kCore:
      return "core";
    case dbscout::core::PointKind::kBorder:
      return "border";
    case dbscout::core::PointKind::kOutlier:
      return "outlier";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using dbscout::ParseDouble;
  using dbscout::ParseUint64;
  using dbscout::Split;
  namespace service = dbscout::service;

  const char* port_text = FlagValue(argc, argv, "port");
  const char* collection = FlagValue(argc, argv, "collection");
  const bool want_metrics = HasFlag(argc, argv, "metrics");
  const bool want_health = HasFlag(argc, argv, "health");
  const bool want_trace_dump = HasFlag(argc, argv, "trace-dump");
  // --metrics/--health/--trace-dump are service-wide, so they take no
  // collection (for --trace-dump it is an optional scope filter).
  if (port_text == nullptr ||
      (collection == nullptr && !want_metrics && !want_health &&
       !want_trace_dump)) {
    return Usage();
  }
  auto port = ParseUint64(port_text);
  if (!port.ok()) {
    return Usage();
  }
  const char* host_text = FlagValue(argc, argv, "host");
  const std::string host = host_text != nullptr ? host_text : "127.0.0.1";

  auto client =
      service::Client::Connect(host, static_cast<uint16_t>(*port));
  if (!client.ok()) {
    std::cerr << "dbscout_client: " << client.status() << "\n";
    return 1;
  }
  const bool want_score = HasFlag(argc, argv, "score");
  if (HasFlag(argc, argv, "trace")) {
    client->EnableTracing();
  }

  if (want_metrics) {
    auto text = client->Metrics();
    if (!text.ok()) {
      std::cerr << "dbscout_client: " << text.status() << "\n";
      return 1;
    }
    std::cout << *text;
    return 0;
  }

  if (want_health) {
    auto health = client->Health();
    if (!health.ok()) {
      std::cerr << "dbscout_client: " << health.status() << "\n";
      return 1;
    }
    std::cout << "state=" << HealthStateName(health->state)
              << " recovery=" << RecoveryStateName(health->recovery)
              << " collections=" << health->collections
              << " rss-bytes=" << health->rss_bytes
              << " open-fds=" << health->open_fds
              << " threads=" << health->threads
              << " uptime=" << health->uptime_seconds;
    if (!health->reason.empty()) {
      std::cout << " reason=\"" << health->reason << "\"";
    }
    std::cout << "\n";
    return 0;
  }

  if (want_trace_dump) {
    uint64_t trace_id = 0;
    if (const char* text = FlagValue(argc, argv, "trace-id")) {
      char* end = nullptr;
      trace_id = std::strtoull(text, &end, 16);
      if (end == text || *end != '\0') {
        return Usage();
      }
    }
    uint32_t limit = 0;
    if (const char* text = FlagValue(argc, argv, "trace-limit")) {
      auto value = ParseUint64(text);
      if (!value.ok()) {
        return Usage();
      }
      limit = static_cast<uint32_t>(*value);
    }
    const char* name = FlagValue(argc, argv, "span-name");
    auto answer = client->TraceDump(
        collection != nullptr ? collection : "",
        name != nullptr ? name : "", trace_id, limit);
    if (!answer.ok()) {
      std::cerr << "dbscout_client: " << answer.status() << "\n";
      return 1;
    }
    std::cerr << "trace retained=" << answer->spans_retained
              << " dropped=" << answer->spans_dropped << "\n";
    std::cout << answer->json << "\n";
    return 0;
  }

  if (const char* path = FlagValue(argc, argv, "ingest")) {
    const char* format = FlagValue(argc, argv, "format");
    auto points = LoadPoints(path, format != nullptr ? format : "");
    if (!points.ok()) {
      std::cerr << "dbscout_client: " << points.status() << "\n";
      return 1;
    }
    auto epoch = client->Ingest(collection,
                                static_cast<uint16_t>(points->dims()),
                                points->values());
    if (!epoch.ok()) {
      std::cerr << "dbscout_client: " << epoch.status() << "\n";
      return 1;
    }
    std::cout << "epoch=" << *epoch;
    if (client->last_trace_id() != 0) {
      std::cout << " trace="
                << dbscout::StrFormat(
                       "%016llx", static_cast<unsigned long long>(
                                      client->last_trace_id()));
    }
    std::cout << "\n";
    return 0;
  }

  if (const char* coords_text = FlagValue(argc, argv, "query")) {
    std::vector<double> point;
    for (std::string_view field : Split(coords_text, ',')) {
      auto value = ParseDouble(field);
      if (!value.ok()) {
        return Usage();
      }
      point.push_back(*value);
    }
    auto answer = client->QueryPoint(collection, point, want_score);
    if (!answer.ok()) {
      std::cerr << "dbscout_client: " << answer.status() << "\n";
      return 1;
    }
    std::cout << "kind=" << KindName(answer->kind)
              << " epoch=" << answer->epoch;
    if (answer->has_score) {
      std::cout << " score=" << answer->score;
    }
    std::cout << "\n";
    return 0;
  }

  if (const char* id_text = FlagValue(argc, argv, "query-id")) {
    auto id = ParseUint64(id_text);
    if (!id.ok()) {
      return Usage();
    }
    auto answer = client->QueryId(collection, static_cast<uint32_t>(*id),
                                  want_score);
    if (!answer.ok()) {
      std::cerr << "dbscout_client: " << answer.status() << "\n";
      return 1;
    }
    std::cout << "kind=" << KindName(answer->kind)
              << " epoch=" << answer->epoch;
    if (answer->has_score) {
      std::cout << " score=" << answer->score;
    }
    std::cout << "\n";
    return 0;
  }

  if (const char* ttl_text = FlagValue(argc, argv, "set-ttl")) {
    auto ttl = ParseDouble(ttl_text);
    if (!ttl.ok()) {
      return Usage();
    }
    auto applied = client->Configure(collection, *ttl);
    if (!applied.ok()) {
      std::cerr << "dbscout_client: " << applied.status() << "\n";
      return 1;
    }
    std::cout << "ttl=" << *applied << "\n";
    return 0;
  }

  if (HasFlag(argc, argv, "stats")) {
    auto stats = client->Stats(collection);
    if (!stats.ok()) {
      std::cerr << "dbscout_client: " << stats.status() << "\n";
      return 1;
    }
    std::cout << "epoch=" << stats->epoch << " points=" << stats->num_points
              << " core=" << stats->num_core
              << " outliers=" << stats->num_outliers
              << " cells=" << stats->num_cells
              << " shed=" << stats->admission_rejections
              << " live=" << stats->live_points
              << " window-begin=" << stats->window_begin
              << " queue-depth=" << stats->queue_depth
              << " ttl=" << stats->ttl_seconds
              << " shards=" << stats->shards
              << " uptime=" << stats->uptime_seconds << "\n";
    if (stats->shards > 1) {
      for (const auto& row : stats->shard_rows) {
        std::cout << "shard " << row.shard << " points=" << row.points
                  << " epoch=" << row.epoch
                  << " queue-depth=" << row.queue_depth << "\n";
      }
    }
    for (const auto& row : stats->phases) {
      std::cout << "phase " << row.name << " seconds=" << row.seconds
                << " dist-comps=" << row.distance_comps
                << " records=" << row.records << "\n";
    }
    for (const auto& row : stats->latencies) {
      std::cout << "latency " << row.verb << " count=" << row.count
                << " p50=" << row.p50_seconds << " p99=" << row.p99_seconds
                << " p999=" << row.p999_seconds << "\n";
    }
    return 0;
  }

  if (HasFlag(argc, argv, "snapshot")) {
    auto snapshot = client->Snapshot(collection);
    if (!snapshot.ok()) {
      std::cerr << "dbscout_client: " << snapshot.status() << "\n";
      return 1;
    }
    size_t outliers = 0;
    for (auto kind : snapshot->kinds) {
      if (kind == dbscout::core::PointKind::kOutlier) {
        ++outliers;
      }
    }
    std::cout << "epoch=" << snapshot->epoch << " core=" << snapshot->num_core
              << " outliers=" << outliers << " cells=" << snapshot->num_cells
              << "\n";
    return 0;
  }

  return Usage();
}

// The `dbscout` command-line tool; all logic lives in src/cli so it can be
// unit tested in-process.
#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return dbscout::cli::RunCli(argc, argv, std::cout, std::cerr);
}

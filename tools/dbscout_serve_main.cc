// Long-running detection server: binds a TCP port and serves the framed
// INGEST/QUERY/STATS/SNAPSHOT protocol over one DetectionService. Exits
// cleanly on SIGINT/SIGTERM, draining queued ingests and in-flight
// sessions first.
//
// usage: dbscout_serve --eps=X --min-pts=N [--host=H] [--port=P]
//                      [--max-sessions=S] [--max-pending=Q]
//                      [--shards=N] [--apply-shards=K] [--ttl-seconds=T]
//                      [--data-dir=DIR] [--wal-fsync=always|interval|never]
//                      [--snapshot-interval=BYTES] [--trace-out=FILE]
//                      [--slow-request-ms=N] [--trace-spans=CAP]
//
// --shards=N backs every collection with N region-partitioned detector
// shards (ghost-halo replication keeps the merged outlier set exact);
// STATS then reports one row per shard. Default 1 = single detector.
// --apply-shards=K sets the shard worker count the apply loop fans
// slab-block tasks out on (0 = hardware concurrency, 1 = serial apply);
// it only applies to the --shards=1 layout.
// --ttl-seconds=T gives every collection a sliding window: points older
// than T seconds are expired by the apply loop (0 = append-only; override
// per collection with dbscout_client --set-ttl).
//
// --data-dir=DIR makes every collection durable: a per-collection
// write-ahead log plus periodic snapshots under DIR, replayed on the next
// start from the same DIR. --wal-fsync picks when acknowledged ingests
// become power-loss durable (always = fsync before every ack, interval =
// group fsync, never = only on clean close; kill -9 never loses
// acknowledged data in any mode). --snapshot-interval=BYTES compacts the
// WAL into a snapshot whenever the active segment outgrows BYTES
// (0 disables). The server refuses to start if recovery fails — serving
// over partial recovery would silently drop acknowledged data.
//
// Tracing is always on: every request's spans (frame decode, queue wait,
// per-shard apply, WAL commit, snapshot publish, reply encode) land in an
// in-memory ring buffer (--trace-spans=CAP spans, default 16384) that
// `dbscout_client --trace-dump` reads live over the TRACE verb.
// --trace-out=FILE additionally writes the ring's tail as Chrome/Perfetto
// JSON at shutdown. --slow-request-ms=N logs a structured warning line
// (with the request's trace id) for any request slower than N ms; N=0
// logs every request (smoke-test mode).
//
// --port=0 (the default) binds an ephemeral port; the chosen port is
// printed as "listening on H:P" so wrappers (tools/serve_smoke.sh) can
// discover it. The banner is printed only after crash recovery finishes,
// so a wrapper that waits for it knows HEALTH is already "ready"; while
// recovery replays the WAL the port is bound and HEALTH answers
// "not-ready".

#include <time.h>

#include <atomic>
#include <csignal>
#include <iostream>
#include <string>

#include "common/str_util.h"
#include "obs/trace.h"
#include "service/server.h"
#include "service/service.h"
#include "storage/store.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int /*signum*/) { g_stop.store(true); }

// Minimal --name=value parser (the dbscout CLI's Flags class wants a
// subcommand word, which this single-purpose tool doesn't have).
const char* FlagValue(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

int Usage() {
  std::cerr << "usage: dbscout_serve --eps=X --min-pts=N [--host=H] "
               "[--port=P] [--max-sessions=S] [--max-pending=Q] "
               "[--shards=N] [--apply-shards=K] [--ttl-seconds=T] "
               "[--data-dir=DIR] [--wal-fsync=always|interval|never] "
               "[--snapshot-interval=BYTES] [--trace-out=FILE] "
               "[--slow-request-ms=N] [--trace-spans=CAP]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using dbscout::ParseDouble;
  using dbscout::ParseUint64;

  const char* eps_text = FlagValue(argc, argv, "eps");
  const char* min_pts_text = FlagValue(argc, argv, "min-pts");
  if (eps_text == nullptr || min_pts_text == nullptr) {
    return Usage();
  }
  auto eps = ParseDouble(eps_text);
  auto min_pts = ParseUint64(min_pts_text);
  if (!eps.ok() || !min_pts.ok()) {
    return Usage();
  }

  dbscout::service::ServiceOptions service_options;
  service_options.params.eps = *eps;
  service_options.params.min_pts = static_cast<int>(*min_pts);
  if (const char* text = FlagValue(argc, argv, "max-pending")) {
    auto value = ParseUint64(text);
    if (!value.ok()) {
      return Usage();
    }
    service_options.max_pending_ingests = *value;
  }
  if (const char* text = FlagValue(argc, argv, "shards")) {
    auto value = ParseUint64(text);
    if (!value.ok() || *value == 0) {
      return Usage();
    }
    service_options.num_shards = *value;
  }
  if (const char* text = FlagValue(argc, argv, "apply-shards")) {
    auto value = ParseUint64(text);
    if (!value.ok()) {
      return Usage();
    }
    service_options.apply_shards = *value;
  }
  if (const char* text = FlagValue(argc, argv, "ttl-seconds")) {
    auto value = ParseDouble(text);
    if (!value.ok() || *value < 0.0) {
      return Usage();
    }
    service_options.ttl_seconds = *value;
  }
  if (const char* text = FlagValue(argc, argv, "data-dir")) {
    service_options.data_dir = text;
  }
  if (const char* text = FlagValue(argc, argv, "wal-fsync")) {
    auto policy = dbscout::storage::ParseFsyncPolicy(text);
    if (!policy.ok()) {
      return Usage();
    }
    service_options.wal_fsync = *policy;
  }
  if (const char* text = FlagValue(argc, argv, "snapshot-interval")) {
    auto value = ParseUint64(text);
    if (!value.ok()) {
      return Usage();
    }
    service_options.snapshot_interval_bytes = *value;
  }
  size_t trace_spans = 16384;
  if (const char* text = FlagValue(argc, argv, "trace-spans")) {
    auto value = ParseUint64(text);
    if (!value.ok()) {
      return Usage();
    }
    trace_spans = *value;  // 0 = unbounded (batch-style full retention)
  }
  // The ring is always attached so `dbscout_client --trace-dump` works
  // without a restart; at the default capacity an idle request path costs
  // only the span emissions themselves (no per-request allocation growth).
  dbscout::obs::TraceCollector trace(trace_spans);
  service_options.trace = &trace;
  std::string trace_out;
  if (const char* text = FlagValue(argc, argv, "trace-out")) {
    trace_out = text;
  }
  if (const char* text = FlagValue(argc, argv, "slow-request-ms")) {
    auto value = ParseDouble(text);
    if (!value.ok() || *value < 0.0) {
      return Usage();
    }
    service_options.slow_request_seconds = *value / 1000.0;
  }

  dbscout::service::ServerOptions server_options;
  if (const char* text = FlagValue(argc, argv, "host")) {
    server_options.host = text;
  }
  if (const char* text = FlagValue(argc, argv, "port")) {
    auto value = ParseUint64(text);
    if (!value.ok()) {
      return Usage();
    }
    server_options.port = static_cast<uint16_t>(*value);
  }
  if (const char* text = FlagValue(argc, argv, "max-sessions")) {
    auto value = ParseUint64(text);
    if (!value.ok()) {
      return Usage();
    }
    server_options.max_sessions = *value;
  }

  // Bind the port before replaying the WAL: during recovery the server is
  // reachable and HEALTH reports not-ready (collection verbs answer
  // kUnavailable), which is what load balancers and the smoke test probe.
  // The "listening" banner is printed only after recovery, so wrappers
  // that wait for it see a ready server.
  service_options.defer_recovery = true;
  dbscout::service::DetectionService service(service_options);
  auto server = dbscout::service::Server::Start(&service, server_options);
  if (!server.ok()) {
    std::cerr << "dbscout_serve: " << server.status() << "\n";
    return 1;
  }
  service.RunDeferredRecovery();
  if (!service.recovery_status().ok()) {
    std::cerr << "dbscout_serve: crash recovery failed: "
              << service.recovery_status() << "\n";
    (*server)->Stop();
    service.Stop();
    return 1;
  }
  std::cout << "listening on " << server_options.host << ":"
            << (*server)->port() << std::endl;

  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  while (!g_stop.load()) {
    timespec tick{0, 100 * 1000 * 1000};  // 100ms
    ::nanosleep(&tick, nullptr);
  }

  std::cout << "shutting down" << std::endl;
  (*server)->Stop();   // drain sessions first ...
  service.Stop();      // ... then the apply queue
  if (!trace_out.empty()) {
    const auto status = trace.WriteChromeJson(trace_out);
    if (!status.ok()) {
      std::cerr << "dbscout_serve: " << status << "\n";
      return 1;
    }
  }
  return 0;
}

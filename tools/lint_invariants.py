#!/usr/bin/env python3
"""Repo-invariant linter for dbscout.

Enforces, statically, the contracts that the compiler cannot:

  simd-fma           No FMA intrinsics, std::fma, or fp-contract overrides in
                     src/simd/ (the distance kernels' bit-exactness contract,
                     DESIGN.md section 7: FMA rounds once and can flip
                     `<= eps2` decisions on boundary points, so scalar and
                     SIMD variants would disagree).
  simd-cap-boundary  Early-exit `cap` comparisons in src/simd/ must sit at
                     batch boundaries, asserted by a
                     `kernel-cap: batch-boundary` marker comment on or
                     directly above the comparison. A cap check inside the
                     per-point tail loop would make the amount of work (and
                     thus the returned count) variant-dependent.
  raw-thread         No raw std::thread / std::jthread / std::async /
                     pthread_create outside src/common/thread_pool.*; all
                     parallelism must flow through ThreadPool so sanitizer
                     runs, shutdown, and reentrancy rules cover it.
                     (Querying std::thread::hardware_concurrency and
                     std::this_thread are allowed.)
  raw-rng            No rand()/srand()/std::random_device/drand48 outside
                     src/common/rng.*; experiments must be reproducible from
                     a seed.
  discarded-status   Status/Result must stay [[nodiscard]] in the headers,
                     and a statement consisting solely of a call to a
                     function declared to return Status/Result<T> (a
                     best-effort, single-line heuristic; the compiler is the
                     real enforcement) is flagged.
  phase-logic-locality
                     The Lemma 1/2 decision logic (phases 2-5) lives only in
                     src/core/phases/. Engine and grid code must not
                     re-derive the verdicts: no comparisons against min_pts
                     other than literal validation (call phases::IsDense /
                     CrossesDensityThreshold), no branching on the
                     cell_dense[]/cell_core[] flag arrays (populating them
                     as kernel input is fine), and no CellType::kDense/kCore
                     comparisons outside the CellMap storage type itself
                     (call phases::IsDenseCell / IsCoreCell). Scope:
                     src/core (minus src/core/phases/), src/external,
                     src/grid, src/service (the serving layer answers from
                     snapshots and must not re-classify), src/storage (WAL
                     replay re-applies points through the normal pipeline
                     and must not re-derive labels); baselines are
                     independent implementations by design and exempt.
  hot-path-purity    The scan kernels must stay wait-free and silent: no
                     DBSCOUT_LOG / DBSCOUT_CHECK streaming and no mutex
                     acquisition (std::mutex, lock_guard, unique_lock,
                     scoped_lock, shared_mutex, .lock(), pthread_mutex_*)
                     inside src/simd/ or the phase kernels
                     (src/core/phases/phase_kernels.* and the sharded-apply
                     insert kernels src/core/phases/insert_kernels.*, which
                     run inside concurrent slab-block shard tasks where a
                     lock would serialize the waves). Observability for
                     these paths flows through the sharded obs::Counter
                     cells and the PhaseRecorder, which publish outside the
                     scan loops. The region-routing module
                     (src/grid/partition.*) is in scope too: the shard
                     router calls it once per ingested point.
                     phase_recorder.h / driver.h orchestrate around the
                     kernels and are out of scope.

A finding on a given line is waived by `lint:allow(<rule>)` in a comment on
that line; use sparingly and justify next to the waiver.

Usage:
  lint_invariants.py --root /path/to/repo   # lint the tree (default: cwd)
  lint_invariants.py --self-test            # verify each rule catches a
                                            # seeded violation and passes a
                                            # clean snippet

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Callable, Iterable, List, NamedTuple, Tuple

CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")
SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")

WAIVER_RE = re.compile(r"lint:allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

CAP_MARKER = "kernel-cap: batch-boundary"


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_line_comment(line: str) -> str:
    """Drops a trailing // comment (naive: ignores // inside string
    literals, which does not occur in this codebase's flagged patterns)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def waived(line: str, rule: str) -> bool:
    m = WAIVER_RE.search(line)
    if not m:
        return False
    rules = [r.strip() for r in m.group(1).split(",")]
    return rule in rules


# ---------------------------------------------------------------------------
# Rule: simd-fma
# ---------------------------------------------------------------------------

FMA_TOKEN_RE = re.compile(
    r"(_mm\d*_f(?:n?m(?:add|sub))_p[sd]"  # _mm256_fmadd_pd etc.
    r"|\bvf?n?madd\d*[ps][sd]\b"  # raw mnemonics in asm blocks
    r"|std::fmaf?\b"
    r"|__builtin_fmaf?\b)"
)
FMA_TARGET_RE = re.compile(r"target\s*\(\s*\"[^\"]*\bfma\b[^\"]*\"")
FP_CONTRACT_SRC_RE = re.compile(r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+(ON|DEFAULT)")
FP_CONTRACT_FLAG_RE = re.compile(r"-ffp-contract=(?!off\b)\w+")


def check_simd_fma(path: str, lines: List[str]) -> Iterable[Finding]:
    rule = "simd-fma"
    is_cmake = os.path.basename(path).startswith("CMakeLists")
    for i, line in enumerate(lines, 1):
        if waived(line, rule):
            continue
        if is_cmake:
            m = FP_CONTRACT_FLAG_RE.search(line.split("#", 1)[0])
            if m:
                yield Finding(path, i, rule,
                              f"fp-contract override '{m.group(0)}' in SIMD "
                              "build flags (only -ffp-contract=off is allowed)")
            continue
        code = strip_line_comment(line)
        m = FMA_TOKEN_RE.search(code)
        if m:
            yield Finding(path, i, rule,
                          f"FMA operation '{m.group(0)}' violates the "
                          "kernel bit-exactness contract (use separate "
                          "mul+add)")
        m = FMA_TARGET_RE.search(code)
        if m:
            yield Finding(path, i, rule,
                          "function target enables the fma instruction set; "
                          "kernels must be compiled without FMA codegen")
        m = FP_CONTRACT_SRC_RE.search(code)
        if m:
            yield Finding(path, i, rule,
                          "FP_CONTRACT pragma re-enables contraction inside "
                          "the kernel translation unit")


# ---------------------------------------------------------------------------
# Rule: simd-cap-boundary
# ---------------------------------------------------------------------------

CAP_COMPARE_RE = re.compile(
    r"(\bcap\s*(==|!=|<=|>=|<|>)|(==|!=|<=|>=|<|>)\s*cap\b)")


def check_simd_cap_boundary(path: str, lines: List[str]) -> Iterable[Finding]:
    rule = "simd-cap-boundary"
    for i, line in enumerate(lines, 1):
        if waived(line, rule):
            continue
        code = strip_line_comment(line)
        if not CAP_COMPARE_RE.search(code):
            continue
        # The marker must appear on the line itself or one of the two lines
        # directly above (the marker comment may be two physical lines).
        window = lines[max(0, i - 3):i]
        if not any(CAP_MARKER in w for w in window):
            yield Finding(
                path, i, rule,
                "cap comparison without a preceding "
                f"'// {CAP_MARKER}' marker: early exit is only allowed "
                "between kKernelBatch-sized batches so every kernel variant "
                "performs identical work")


# ---------------------------------------------------------------------------
# Rule: raw-thread
# ---------------------------------------------------------------------------

RAW_THREAD_RE = re.compile(
    r"(std::thread\b(?!::hardware_concurrency)"
    r"|std::jthread\b"
    r"|std::async\b"
    r"|\bpthread_create\b)")
THREAD_POOL_FILES = ("src/common/thread_pool.h", "src/common/thread_pool.cc")


def check_raw_thread(path: str, lines: List[str]) -> Iterable[Finding]:
    rule = "raw-thread"
    if path.replace(os.sep, "/") in THREAD_POOL_FILES:
        return
    for i, line in enumerate(lines, 1):
        if waived(line, rule):
            continue
        code = strip_line_comment(line)
        m = RAW_THREAD_RE.search(code)
        if m:
            yield Finding(path, i, rule,
                          f"raw '{m.group(0)}' outside "
                          "src/common/thread_pool.*: route parallelism "
                          "through ThreadPool (sanitizer coverage, shutdown "
                          "and reentrancy guarantees)")


# ---------------------------------------------------------------------------
# Rule: raw-rng
# ---------------------------------------------------------------------------

RAW_RNG_RE = re.compile(
    r"(\bs?rand\s*\(|std::random_device\b|\bdrand48\s*\(|\brandom\s*\(\s*\))")
RNG_FILES = ("src/common/rng.h", "src/common/rng.cc")


def check_raw_rng(path: str, lines: List[str]) -> Iterable[Finding]:
    rule = "raw-rng"
    if path.replace(os.sep, "/") in RNG_FILES:
        return
    for i, line in enumerate(lines, 1):
        if waived(line, rule):
            continue
        code = strip_line_comment(line)
        m = RAW_RNG_RE.search(code)
        if m:
            yield Finding(path, i, rule,
                          f"non-deterministic RNG '{m.group(0).strip()}' "
                          "outside src/common/rng.*: use dbscout::Rng so "
                          "every run is reproducible from a seed")


# ---------------------------------------------------------------------------
# Rule: discarded-status
# ---------------------------------------------------------------------------

# Declarations like `<ReturnType> Foo(...)`, possibly preceded by
# static/virtual/friend/etc. The return type is captured so names can be
# partitioned into "returns Status/Result" vs "returns something else";
# names with overloads in both camps are ambiguous to a text-level check
# and are skipped (the compiler's [[nodiscard]] still covers them).
FN_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|friend\s+|inline\s+|constexpr\s+)*"
    r"((?:::)?[A-Za-z_][\w:]*(?:<[^;(){}]*>)?(?:\s*[&*])?)\s+"
    r"([A-Za-z_]\w*)\s*\(")
STATUS_TYPE_RE = re.compile(r"^(?:::)?(?:dbscout::)?(?:Status|Result<)")
DECL_NON_NAMES = {"if", "for", "while", "switch", "return", "else", "case",
                  "new", "delete", "sizeof", "do"}

# A statement that is nothing but a (possibly qualified) call:
#   Foo(...);   obj.Foo(...);   ns::Foo(...);   ptr->Foo(...);
BARE_CALL_TMPL = (r"^\s*(?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*"
                  r"({names})\s*\(.*\)\s*;\s*$")

NODISCARD_REQUIRED = {
    "src/common/status.h": "class [[nodiscard]] Status",
    "src/common/result.h": "class [[nodiscard]] Result",
}

DISCARD_SCAN_SKIP_NAMES = {"Result", "Status", "OK"}


def collect_status_returning_names(files: Iterable[Tuple[str, List[str]]]
                                   ) -> set:
    status_names = set()
    other_names = set()
    for path, lines in files:
        if not path.endswith((".h", ".hpp")):
            continue
        for line in lines:
            m = FN_DECL_RE.match(strip_line_comment(line))
            if not m or m.group(2) in DECL_NON_NAMES:
                continue
            if STATUS_TYPE_RE.match(m.group(1)):
                status_names.add(m.group(2))
            else:
                other_names.add(m.group(2))
    return status_names - other_names - DISCARD_SCAN_SKIP_NAMES


def is_fresh_statement(lines: List[str], i: int) -> bool:
    """True when 1-based line i starts a new statement (the previous code
    line ended one): guards against flagging the continuation lines of a
    multi-line call or macro invocation such as DBSCOUT_ASSIGN_OR_RETURN."""
    for j in range(i - 2, -1, -1):
        prev = strip_line_comment(lines[j]).strip()
        if not prev:
            continue
        return prev.endswith((";", "{", "}", ":")) or prev.startswith("#")
    return True


def make_check_discarded_status(files: List[Tuple[str, List[str]]]
                                ) -> Callable[[str, List[str]],
                                              Iterable[Finding]]:
    names = collect_status_returning_names(files)
    bare_call_re = (re.compile(
        BARE_CALL_TMPL.format(names="|".join(sorted(names))))
        if names else None)

    def check(path: str, lines: List[str]) -> Iterable[Finding]:
        rule = "discarded-status"
        norm = path.replace(os.sep, "/")
        if norm in NODISCARD_REQUIRED:
            needle = NODISCARD_REQUIRED[norm]
            if not any(needle in line for line in lines):
                yield Finding(path, 1, rule,
                              f"expected '{needle}' — the [[nodiscard]] "
                              "attribute is the compile-time half of this "
                              "check and must not be dropped")
        if bare_call_re is None:
            return
        for i, line in enumerate(lines, 1):
            if waived(line, rule):
                continue
            code = strip_line_comment(line)
            m = bare_call_re.match(code)
            if (m and code.count("(") == code.count(")")
                    and is_fresh_statement(lines, i)):
                yield Finding(path, i, rule,
                              f"return value of '{m.group(1)}' (Status/"
                              "Result) is discarded; check it, propagate "
                              "it, or cast to void with a comment")

    return check


# ---------------------------------------------------------------------------
# Rule: phase-logic-locality
# ---------------------------------------------------------------------------

PHASE_HOME = "src/core/phases/"
PHASE_SCOPE_PREFIXES = ("src/core/", "src/external/", "src/grid/",
                        "src/service/", "src/storage/")
# CellMap is the storage type the CellType verdicts live in; its own
# accessors necessarily compare the enum.
PHASE_CELLTYPE_EXEMPT = ("src/grid/cell_map.h", "src/grid/cell_map.cc")

# A comparison operator that is not part of ->, <<, >>, <=>, or a template
# bracket pair is close enough for the flagged patterns in this codebase.
_CMP = r"(?:==|!=|<=|>=|(?<![<>=\-])<(?![<=])|(?<![<>=\-])>(?![=>]))"
_NUM_LITERAL_RE = re.compile(r"\d+[uUlL]*")

MIN_PTS_LEFT_RE = re.compile(r"\bmin_pts\w*\s*(" + _CMP + r")\s*([^\s;)]+)")
MIN_PTS_RIGHT_RE = re.compile(r"([^\s(!&|]+)\s*(" + _CMP + r")\s*min_pts\w*\b")
CELL_FLAG_RE = re.compile(r"\b(cell_dense|cell_core)\s*\[")
CELL_FLAG_ASSIGN_RE = re.compile(
    r"\b(cell_dense|cell_core)\s*\[[^\]]*\]\s*=(?!=)")
CELLTYPE_CMP_RE = re.compile(
    r"(" + _CMP + r")\s*(?:grid::)?CellType::k(?:Dense|Core)\b"
    r"|(?:grid::)?CellType::k(?:Dense|Core)\s*(" + _CMP + r")")


def in_phase_scope(path: str) -> bool:
    norm = path.replace(os.sep, "/")
    return (norm.startswith(PHASE_SCOPE_PREFIXES)
            and not norm.startswith(PHASE_HOME))


def check_phase_logic_locality(path: str, lines: List[str]
                               ) -> Iterable[Finding]:
    rule = "phase-logic-locality"
    if not in_phase_scope(path):
        return
    norm = path.replace(os.sep, "/")
    celltype_exempt = norm in PHASE_CELLTYPE_EXEMPT
    for i, line in enumerate(lines, 1):
        if waived(line, rule):
            continue
        code = strip_line_comment(line)

        # Family 1: density decisions re-derived from min_pts. Comparisons
        # against a numeric literal are parameter validation, not Lemma 1.
        for m in MIN_PTS_LEFT_RE.finditer(code):
            if not _NUM_LITERAL_RE.fullmatch(m.group(2)):
                yield Finding(path, i, rule,
                              "comparison against min_pts re-derives the "
                              "Lemma 1 density verdict; call "
                              "core::phases::IsDense (or "
                              "CrossesDensityThreshold / "
                              "CrossesDensityThresholdBy for insert "
                              "transitions)")
        for m in MIN_PTS_RIGHT_RE.finditer(code):
            if not _NUM_LITERAL_RE.fullmatch(m.group(1)):
                yield Finding(path, i, rule,
                              "comparison against min_pts re-derives the "
                              "Lemma 1 density verdict; call "
                              "core::phases::IsDense (or "
                              "CrossesDensityThreshold / "
                              "CrossesDensityThresholdBy for insert "
                              "transitions)")

        # Family 2: branching on the per-cell flag arrays outside the
        # kernels. Writing them (the engines populate kernel input) is the
        # intended interface; reads are phase-3/5 logic.
        assigns = {m.start() for m in CELL_FLAG_ASSIGN_RE.finditer(code)}
        for m in CELL_FLAG_RE.finditer(code):
            if m.start() not in assigns:
                yield Finding(path, i, rule,
                              f"read of {m.group(1)}[] outside "
                              "src/core/phases/ re-implements a phase "
                              "decision; engines only populate these arrays "
                              "and pass them to the cell kernels")

        # Family 3: CellType verdict comparisons belong to
        # phases::IsDenseCell / IsCoreCell (CellMap itself excepted).
        if not celltype_exempt and CELLTYPE_CMP_RE.search(code):
            yield Finding(path, i, rule,
                          "CellType::kDense/kCore comparison outside "
                          "src/core/phases/; call core::phases::IsDenseCell "
                          "or IsCoreCell so Lemma 2 has one implementation")


# ---------------------------------------------------------------------------
# Rule: hot-path-purity
# ---------------------------------------------------------------------------

HOT_PATH_FILE_RE = re.compile(
    r"^(src/simd/[^/]+\.(?:cc|cpp|h|hpp)"
    r"|src/core/phases/(?:phase_kernels|insert_kernels)\.(?:cc|cpp|h|hpp)"
    # Region routing runs once per ingested point in the shard router's
    # scatter loop (RegionOf / CoveringRegions / SlabOfCoord).
    r"|src/grid/partition\.(?:cc|h))$")
HOT_PATH_LOG_RE = re.compile(r"\bDBSCOUT_(?:LOG|CHECK)\b")
HOT_PATH_MUTEX_RE = re.compile(
    r"(std::(?:recursive_|shared_|timed_)*mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\.\s*(?:try_)?lock(?:_shared)?\s*\("
    r"|\b(?:dbscout::)?(?:Mutex|MutexLock|CondVar)\b"
    r"|\bpthread_mutex_\w+)")
# Trace stamping stays above the kernels: spans wrap whole phases in the
# service/apply layers, never per-point or per-cell work. A kernel that
# takes a RequestContext or writes to the span ring would put clock reads
# and ring CAS traffic inside the distance loops that bench_kernels gates.
HOT_PATH_TRACE_RE = re.compile(
    r"(\b(?:obs::)?TraceCollector\b"
    r"|\bAdd(?:Traced)?Span\s*\("
    r"|\b(?:service::)?RequestContext\b"
    r"|\bNextTraceId\s*\()")


def check_hot_path_purity(path: str, lines: List[str]) -> Iterable[Finding]:
    rule = "hot-path-purity"
    if not HOT_PATH_FILE_RE.match(path.replace(os.sep, "/")):
        return
    for i, line in enumerate(lines, 1):
        if waived(line, rule):
            continue
        code = strip_line_comment(line)
        m = HOT_PATH_LOG_RE.search(code)
        if m:
            yield Finding(path, i, rule,
                          f"'{m.group(0)}' in a scan kernel: the hot path "
                          "must stay silent; record through PhaseRecorder / "
                          "obs counters and log from the driver")
        m = HOT_PATH_MUTEX_RE.search(code)
        if m:
            yield Finding(path, i, rule,
                          f"mutex acquisition '{m.group(0).strip()}' in a "
                          "scan kernel: the hot path must stay wait-free; "
                          "use the sharded atomic cells in obs::Counter or "
                          "aggregate after the loop")
        m = HOT_PATH_TRACE_RE.search(code)
        if m:
            yield Finding(path, i, rule,
                          f"trace plumbing '{m.group(0).strip()}' in a scan "
                          "kernel: spans wrap whole phases in the service "
                          "and apply layers; kernels must not read clocks "
                          "or touch the span ring per element")


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def in_simd(path: str) -> bool:
    return path.replace(os.sep, "/").startswith("src/simd/")


def load_tree(root: str) -> List[Tuple[str, List[str]]]:
    files = []
    for top in SCAN_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, dirnames, filenames in os.walk(top_path):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for fn in sorted(filenames):
                rel = os.path.relpath(os.path.join(dirpath, fn), root)
                if fn.endswith(CXX_EXTENSIONS) or (
                        in_simd(rel) and fn.startswith("CMakeLists")):
                    with open(os.path.join(dirpath, fn), "r",
                              encoding="utf-8", errors="replace") as f:
                        files.append((rel, f.read().splitlines()))
    return files


def lint_files(files: List[Tuple[str, List[str]]],
               regex_purity: bool = True) -> List[Finding]:
    """Runs every textual rule. When `regex_purity` is False the caller is
    delegating hot-path-purity to the AST analyzer (tools/analyzer/), which
    sees through transitive calls the line regexes cannot."""
    check_discarded = make_check_discarded_status(files)
    findings: List[Finding] = []
    for path, lines in files:
        if in_simd(path):
            findings.extend(check_simd_fma(path, lines))
            findings.extend(check_simd_cap_boundary(path, lines))
        if os.path.basename(path).startswith("CMakeLists"):
            continue
        findings.extend(check_raw_thread(path, lines))
        findings.extend(check_raw_rng(path, lines))
        findings.extend(check_phase_logic_locality(path, lines))
        if regex_purity:
            findings.extend(check_hot_path_purity(path, lines))
        findings.extend(check_discarded(path, lines))
    return findings


def ast_purity_findings(root: str, build_dir: str):
    """hot-path-purity via the libclang analyzer; None when unavailable
    (no bindings, no libclang, or no compile_commands.json) so the caller
    can fall back to the regex rule."""
    tools_dir = os.path.dirname(os.path.abspath(__file__))
    if tools_dir not in sys.path:
        sys.path.insert(0, tools_dir)
    try:
        from analyzer import checks as ast_checks
        from analyzer import core as ast_core
    except ImportError:
        return None
    if ast_core.load_cindex() is None:
        return None
    compdb = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(compdb):
        return None
    cindex = ast_core.load_cindex()
    src_root = os.path.normpath(os.path.abspath(os.path.join(root, "src")))
    sources = ast_core.load_compdb(build_dir)
    if not sources:
        return None
    graph = ast_core.build_graph(cindex, sources, src_root)
    raw = ast_checks.check_purity(graph, ast_core.WaiverIndex())
    root_prefix = os.path.normpath(os.path.abspath(root)) + os.sep
    out: List[Finding] = []
    for f in sorted(set(raw), key=lambda f: (f.file, f.line, f.message)):
        path = f.file
        if path.startswith(root_prefix):
            path = path[len(root_prefix):]
        out.append(Finding(path, f.line, "hot-path-purity", f.message))
    return out


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet on a
# clean snippet. Run as a ctest so a regression in the linter itself fails
# the suite.
# ---------------------------------------------------------------------------

def self_test() -> int:
    def lines(s: str) -> List[str]:
        return s.splitlines()

    failures = []

    def expect(rule: str, findings: List[Finding], want: int, label: str):
        got = [f for f in findings if f.rule == rule]
        if len(got) != want:
            failures.append(
                f"{rule}/{label}: expected {want} finding(s), got "
                f"{len(got)}: {[str(f) for f in got]}")

    # simd-fma
    bad = lines("x = _mm256_fmadd_pd(a, b, c);\n"
                "double y = std::fma(a, b, c);\n")
    expect("simd-fma", list(check_simd_fma("src/simd/k.cc", bad)), 2, "seeded")
    ok = lines("acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));\n")
    expect("simd-fma", list(check_simd_fma("src/simd/k.cc", ok)), 0, "clean")
    cmake_bad = lines('set_source_files_properties(k.cc PROPERTIES '
                      'COMPILE_OPTIONS "-ffp-contract=fast")')
    expect("simd-fma",
           list(check_simd_fma("src/simd/CMakeLists.txt", cmake_bad)), 1,
           "cmake-seeded")
    cmake_ok = lines('COMPILE_OPTIONS "-ffp-contract=off"')
    expect("simd-fma",
           list(check_simd_fma("src/simd/CMakeLists.txt", cmake_ok)), 0,
           "cmake-clean")

    # simd-cap-boundary
    bad = lines("for (; i < count; ++i) {\n"
                "  if (hits >= cap) return hits;\n"
                "}\n")
    expect("simd-cap-boundary",
           list(check_simd_cap_boundary("src/simd/k.cc", bad)), 1, "seeded")
    ok = lines("// kernel-cap: batch-boundary (contract)\n"
               "if (cap != 0 && hits >= cap) return hits;\n")
    expect("simd-cap-boundary",
           list(check_simd_cap_boundary("src/simd/k.cc", ok)), 0, "clean")

    # raw-thread
    bad = lines("std::thread t([] {});\n"
                "auto f = std::async(std::launch::async, [] {});\n")
    expect("raw-thread", list(check_raw_thread("src/core/x.cc", bad)), 2,
           "seeded")
    ok = lines("size_t n = std::thread::hardware_concurrency();\n"
               "std::thread t([] {});  // lint:allow(raw-thread) testing\n")
    expect("raw-thread", list(check_raw_thread("src/core/x.cc", ok)), 0,
           "clean")
    exempt = lines("std::vector<std::thread> threads_;\n")
    expect("raw-thread",
           list(check_raw_thread("src/common/thread_pool.h", exempt)), 0,
           "exempt-file")
    service_bad = lines("std::thread session([this] { Serve(); });\n")
    expect("raw-thread",
           list(check_raw_thread("src/service/server.cc", service_bad)), 1,
           "service-in-scope")
    storage_bad = lines("std::thread fsyncer([this] { SyncLoop(); });\n")
    expect("raw-thread",
           list(check_raw_thread("src/storage/store.cc", storage_bad)), 1,
           "storage-in-scope")

    # raw-rng
    bad = lines("int x = rand() % 6;\n"
                "std::random_device rd;\n")
    expect("raw-rng", list(check_raw_rng("tests/foo_test.cc", bad)), 2,
           "seeded")
    ok = lines("Rng rng(42);\n")
    expect("raw-rng", list(check_raw_rng("tests/foo_test.cc", ok)), 0,
           "clean")

    # phase-logic-locality
    bad = lines("if (count >= min_pts) {\n"
                "  mark_core(p);\n"
                "}\n"
                "if (++neighbor_counts_[q] == min_pts) promote(q);\n"
                "if (cell_core[c]) continue;\n"
                "if (map.TypeOf(c) == CellType::kDense) dense = true;\n")
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/core/x.cc", bad)), 4,
           "seeded")
    ok = lines("if (min_pts < 1) return Status::InvalidArgument(\"\");\n"
               "map.Insert(c, n, phases::IsDense(n, min_pts));\n"
               "cell_dense[c] = eligible[c] && phases::IsDense(sz, min_pts);\n"
               "out.num_dense_cells = map.CountByType(CellType::kDense);\n"
               "if (count >= min_pts) {  // lint:allow(phase-logic-locality)\n")
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/external/y.cc", ok)), 0,
           "clean")
    batched = lines("if (old + added >= min_pts) promoted.push_back(q);\n")
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/core/x.cc", batched)), 1,
           "batched-threshold-seeded")
    exempt = lines("if (count >= min_pts) mark(c);\n")
    expect("phase-logic-locality",
           list(check_phase_logic_locality(
               "src/core/phases/phase_kernels.cc", exempt)), 0, "phase-home")
    expect("phase-logic-locality",
           list(check_phase_logic_locality(
               "src/core/phases/insert_kernels.h", exempt)), 0,
           "insert-kernels-home")
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/baselines/dbscan.cc",
                                           exempt)), 0, "out-of-scope")
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/service/service.cc",
                                           exempt)), 1, "service-in-scope")
    # The shard/router layer routes points and merges labels; re-deriving
    # density decisions there would fork the phase logic, so it stays in
    # scope like the rest of src/service/.
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/service/shard.cc",
                                           exempt)), 1, "shard-in-scope")
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/service/router.cc",
                                           exempt)), 1, "router-in-scope")
    # Durable replay feeds recovered points back through the apply
    # pipeline; deciding density during replay would fork the phase logic.
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/storage/store.cc",
                                           exempt)), 1, "storage-in-scope")
    storage = lines("return TypeOf(coord) >= CellType::kCore;\n")
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/grid/cell_map.h", storage)),
           0, "cellmap-exempt")
    expect("phase-logic-locality",
           list(check_phase_logic_locality("src/grid/grid.cc", storage)), 1,
           "celltype-outside-cellmap")

    # hot-path-purity
    bad = lines("DBSCOUT_LOG(kDebug) << \"cell \" << c;\n"
                "std::lock_guard<std::mutex> g(mu_);\n"
                "counts_mu_.lock();\n"
                "DBSCOUT_CHECK(count <= n);\n")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/simd/distance_kernel.cc", bad)),
           4, "simd-seeded")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/core/phases/phase_kernels.cc",
                                      bad)), 4, "kernels-seeded")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/core/phases/insert_kernels.h",
                                      bad)), 4, "insert-kernels-seeded")
    ok = lines("hits += CountNeighborsBatch(pts, i, eps2);\n"
               "counter->Increment();  // sharded atomic cell, wait-free\n"
               "std::atomic<uint64_t> total{0};\n")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/simd/distance_kernel.cc", ok)), 0,
           "clean")
    traced = lines("void Scan(const service::RequestContext& ctx);\n"
                   "trace->AddTracedSpan(\"cell\", \"simd\", id, s, dt);\n"
                   "obs::TraceCollector* trace_;\n"
                   "const uint64_t id = NextTraceId();\n")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/simd/distance_kernel.h", traced)),
           4, "trace-seeded")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/core/phases/insert_kernels.cc",
                                      traced)), 4, "trace-kernels-seeded")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/service/service.cc", traced)), 0,
           "trace-service-exempt")
    trace_ok = lines("// spans are emitted by the driver around this call\n"
                     "const double elapsed = timer.ElapsedSeconds();\n")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/simd/distance_kernel.cc",
                                      trace_ok)), 0, "trace-clean")
    waived_line = lines(
        "std::mutex mu;  // lint:allow(hot-path-purity) cold init path\n")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/simd/distance_kernel.h",
                                      waived_line)), 0, "waived")
    out_of_scope = lines("std::lock_guard<std::mutex> g(mu_);\n"
                         "DBSCOUT_LOG(kInfo) << \"publishing\";\n")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/core/phases/phase_recorder.h",
                                      out_of_scope)), 0, "recorder-exempt")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/obs/metrics.cc", out_of_scope)),
           0, "obs-exempt")
    wrappers = lines("MutexLock lock(mu_);\n"
                     "dbscout::CondVar cv;\n"
                     "Mutex merge_mu;\n")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/simd/distance_kernel.cc",
                                      wrappers)), 3, "dbscout-wrappers")
    # Region routing (grid/partition) runs per ingested point in the shard
    # router's scatter loop: same silence/wait-freedom bar as the kernels.
    expect("hot-path-purity",
           list(check_hot_path_purity("src/grid/partition.h", bad)), 4,
           "partition-header-seeded")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/grid/partition.cc", bad)), 4,
           "partition-impl-seeded")
    expect("hot-path-purity",
           list(check_hot_path_purity("src/grid/regions.h", bad)), 0,
           "regions-out-of-scope")

    # discarded-status
    header = ("src/api.h", lines("Status Frobnicate(int x);\n"
                                 "Result<int> Load(const char* p);\n"
                                 "Result<int> Add(int x);\n"
                                 "void Add(double x);\n"))
    clean_status_h = ("src/common/status.h",
                      lines("class [[nodiscard]] Status {"))
    clean_result_h = ("src/common/result.h",
                      lines("class [[nodiscard]] Result {"))
    bad_body = ("src/api.cc", lines("void F() {\n"
                                    "  Frobnicate(1);\n"
                                    "  obj.Load(\"x\");\n"
                                    "}\n"))
    ok_body = ("src/ok.cc",
               lines("Status s = Frobnicate(1);\n"
                     "DBSCOUT_RETURN_IF_ERROR(Frobnicate(2));\n"
                     "(void)Frobnicate(3);  // best-effort cleanup\n"
                     "return Frobnicate(4);\n"
                     "ps.Add(7);\n"  # ambiguous overload: skipped
                     "DBSCOUT_ASSIGN_OR_RETURN(auto v,\n"
                     "    Load(p));\n"  # continuation line: skipped
                     "int z = 0;\n"))
    corpus = [header, clean_status_h, clean_result_h, bad_body, ok_body]
    check = make_check_discarded_status(corpus)
    expect("discarded-status", list(check(*bad_body)), 2, "seeded")
    expect("discarded-status", list(check(*ok_body)), 0, "clean")
    stripped_h = ("src/common/status.h", lines("class Status {"))
    check2 = make_check_discarded_status([stripped_h])
    expect("discarded-status", list(check2(*stripped_h)), 1,
           "nodiscard-removed")

    if failures:
        print("lint_invariants self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("lint_invariants self-test passed "
          "(every rule fires on seeded violations and passes clean code)")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repo root to lint (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule self-test instead of linting")
    parser.add_argument("--purity", choices=("auto", "regex", "ast"),
                        default="auto",
                        help="hot-path-purity backend: 'ast' delegates to "
                             "tools/analyzer (transitive, needs libclang + "
                             "compile_commands.json), 'regex' keeps the "
                             "textual rule, 'auto' (default) prefers ast "
                             "and falls back to regex")
    parser.add_argument("--build-dir", default="build",
                        help="build tree with compile_commands.json for "
                             "--purity=ast/auto (default: build)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"lint_invariants: no src/ under '{args.root}' "
              "(wrong --root?)", file=sys.stderr)
        return 2

    purity_findings = None
    if args.purity in ("auto", "ast"):
        purity_findings = ast_purity_findings(args.root, args.build_dir)
        if purity_findings is None and args.purity == "ast":
            print("lint_invariants: --purity=ast but the analyzer is "
                  "unavailable (need python clang bindings, libclang, and "
                  f"{args.build_dir}/compile_commands.json)",
                  file=sys.stderr)
            return 2

    files = load_tree(args.root)
    findings = lint_files(files, regex_purity=purity_findings is None)
    if purity_findings is not None:
        findings.extend(purity_findings)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

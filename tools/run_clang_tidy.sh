#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over the library
# sources in src/, against the compile_commands.json of an existing build
# tree. Exits non-zero on any diagnostic (WarningsAsErrors: '*').
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir defaults to ./build and must have been configured already
# (the top-level CMakeLists.txt always exports compile_commands.json).
#
# When no clang-tidy binary is on PATH the script reports SKIPPED and exits
# 0: the container images for plain test runs do not ship clang, and a
# missing linter must not masquerade as a lint failure. CI images that do
# ship clang-tidy get the real check automatically.
set -u

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [ "${1:-}" = "--" ]; then shift; fi

TIDY=""
for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
            clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" > /dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done

if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: SKIPPED (no clang-tidy binary on PATH)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: ERROR: $BUILD_DIR/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# Library translation units only (see .clang-tidy for why tests/bench are
# out of scope). Sorted for a stable, diffable log.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)

echo "run_clang_tidy: $TIDY over ${#SOURCES[@]} files (build: $BUILD_DIR)"

STATUS=0
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
    "$@" "${SOURCES[@]}" || STATUS=$?
else
  for f in "${SOURCES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$@" "$f" || STATUS=1
  done
fi

if [ "$STATUS" -ne 0 ]; then
  echo "run_clang_tidy: FAILED (diagnostics above)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"

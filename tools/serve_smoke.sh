#!/usr/bin/env bash
# End-to-end smoke for the detection service: boots dbscout_serve on an
# ephemeral port, ingests a generated shape dataset through dbscout_client,
# checks that stats report outliers, probes a far-away point, scrapes the
# METRICS endpoint twice (Prometheus text format, monotone counters), then
# shuts the server down with SIGTERM and verifies a clean exit.
#
# usage: tools/serve_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
DBSCOUT="$BUILD_DIR/tools/dbscout"
SERVE="$BUILD_DIR/tools/dbscout_serve"
CLIENT="$BUILD_DIR/tools/dbscout_client"
for bin in "$DBSCOUT" "$SERVE" "$CLIENT"; do
  [[ -x "$bin" ]] || { echo "missing binary: $bin (build first)"; exit 1; }
done

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== generate dataset"
"$DBSCOUT" generate --dataset=blobs --n=2000 --contamination=0.02 \
  --seed=11 --output="$WORK/blobs.dbsc"

echo "== boot server"
"$SERVE" --eps=0.7 --min-pts=5 --port=0 >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$WORK/serve.log")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "server never reported its port"; exit 1; }
echo "   port=$PORT"

echo "== ingest"
"$CLIENT" --port="$PORT" --collection=smoke --ingest="$WORK/blobs.dbsc"

echo "== stats"
STATS="$("$CLIENT" --port="$PORT" --collection=smoke --stats | head -1)"
echo "   $STATS"
grep -q "points=2000" <<<"$STATS" || { echo "FAIL: expected points=2000"; exit 1; }
OUTLIERS="$(sed -n 's/.*outliers=\([0-9]*\).*/\1/p' <<<"$STATS")"
[[ "$OUTLIERS" -gt 0 ]] || { echo "FAIL: expected outliers > 0"; exit 1; }
[[ "$OUTLIERS" -lt 200 ]] || { echo "FAIL: implausible outlier count $OUTLIERS"; exit 1; }

echo "== probe a far-away point (must be an outlier)"
PROBE="$("$CLIENT" --port="$PORT" --collection=smoke --query=1000,1000 --score)"
echo "   $PROBE"
grep -q "kind=outlier" <<<"$PROBE" || { echo "FAIL: far probe not an outlier"; exit 1; }

echo "== metrics scrape (Prometheus text format)"
scrape_counter() {  # scrape_counter FILE LINE_PREFIX -> integer value
  sed -n "s/^$2 \([0-9][0-9]*\)$/\1/p" "$1"
}
"$CLIENT" --port="$PORT" --metrics >"$WORK/metrics1.txt"
grep -q '^# HELP dbscout_ingest_points_total ' "$WORK/metrics1.txt" \
  || { echo "FAIL: missing HELP line"; cat "$WORK/metrics1.txt"; exit 1; }
grep -q '^# TYPE dbscout_ingest_points_total counter$' "$WORK/metrics1.txt" \
  || { echo "FAIL: missing TYPE line"; exit 1; }
grep -q '^dbscout_request_seconds_bucket{.*le="+Inf"} ' "$WORK/metrics1.txt" \
  || { echo "FAIL: missing +Inf histogram bucket"; exit 1; }
POINTS1="$(scrape_counter "$WORK/metrics1.txt" dbscout_ingest_points_total)"
[[ "$POINTS1" -eq 2000 ]] \
  || { echo "FAIL: ingest_points_total=$POINTS1, want 2000"; exit 1; }
QUERIES1="$(scrape_counter "$WORK/metrics1.txt" \
  'dbscout_request_seconds_count{verb="query"}')"
[[ "$QUERIES1" -ge 1 ]] || { echo "FAIL: no query latency samples"; exit 1; }

echo "== second scrape: counters must be monotone non-decreasing"
"$CLIENT" --port="$PORT" --collection=smoke --query=1000,1000 >/dev/null
"$CLIENT" --port="$PORT" --metrics >"$WORK/metrics2.txt"
POINTS2="$(scrape_counter "$WORK/metrics2.txt" dbscout_ingest_points_total)"
QUERIES2="$(scrape_counter "$WORK/metrics2.txt" \
  'dbscout_request_seconds_count{verb="query"}')"
[[ "$POINTS2" -ge "$POINTS1" ]] \
  || { echo "FAIL: ingest_points_total went backwards ($POINTS1 -> $POINTS2)"; exit 1; }
[[ "$QUERIES2" -gt "$QUERIES1" ]] \
  || { echo "FAIL: query count did not advance ($QUERIES1 -> $QUERIES2)"; exit 1; }
echo "   ingest_points_total=$POINTS2 query_count=$QUERIES1->$QUERIES2"

echo "== graceful shutdown"
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
[[ "$EXIT_CODE" -eq 0 ]] || { echo "FAIL: server exit code $EXIT_CODE"; cat "$WORK/serve.log"; exit 1; }

echo "PASS: serve smoke ok ($OUTLIERS outliers)"

#!/usr/bin/env bash
# End-to-end smoke for the detection service: boots dbscout_serve on an
# ephemeral port, ingests a generated shape dataset through dbscout_client,
# checks that stats report outliers, probes a far-away point, scrapes the
# METRICS endpoint twice (Prometheus text format, monotone counters), then
# shuts the server down with SIGTERM and verifies a clean exit. A second
# durable leg ingests into a --data-dir server, kill -9s it, checks the
# WAL with wal_inspect, restarts over the same directory, and asserts the
# stats and a probe query are unchanged.
#
# usage: tools/serve_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
DBSCOUT="$BUILD_DIR/tools/dbscout"
SERVE="$BUILD_DIR/tools/dbscout_serve"
CLIENT="$BUILD_DIR/tools/dbscout_client"
for bin in "$DBSCOUT" "$SERVE" "$CLIENT"; do
  [[ -x "$bin" ]] || { echo "missing binary: $bin (build first)"; exit 1; }
done

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== generate dataset"
"$DBSCOUT" generate --dataset=blobs --n=2000 --contamination=0.02 \
  --seed=11 --output="$WORK/blobs.dbsc"

echo "== boot server"
# --slow-request-ms=0 logs every request as "slow" so the tracing leg can
# assert the slow-request log carries the same trace id the client prints.
"$SERVE" --eps=0.7 --min-pts=5 --port=0 --slow-request-ms=0 \
  >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$WORK/serve.log")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "server never reported its port"; exit 1; }
echo "   port=$PORT"

echo "== ingest"
"$CLIENT" --port="$PORT" --collection=smoke --ingest="$WORK/blobs.dbsc"

echo "== stats"
STATS="$("$CLIENT" --port="$PORT" --collection=smoke --stats | head -1)"
echo "   $STATS"
grep -q "points=2000" <<<"$STATS" || { echo "FAIL: expected points=2000"; exit 1; }
OUTLIERS="$(sed -n 's/.*outliers=\([0-9]*\).*/\1/p' <<<"$STATS")"
[[ "$OUTLIERS" -gt 0 ]] || { echo "FAIL: expected outliers > 0"; exit 1; }
[[ "$OUTLIERS" -lt 200 ]] || { echo "FAIL: implausible outlier count $OUTLIERS"; exit 1; }

echo "== probe a far-away point (must be an outlier)"
PROBE="$("$CLIENT" --port="$PORT" --collection=smoke --query=1000,1000 --score)"
echo "   $PROBE"
grep -q "kind=outlier" <<<"$PROBE" || { echo "FAIL: far probe not an outlier"; exit 1; }

echo "== metrics scrape (Prometheus text format)"
scrape_counter() {  # scrape_counter FILE LINE_PREFIX -> integer value
  sed -n "s/^$2 \([0-9][0-9]*\)$/\1/p" "$1"
}
"$CLIENT" --port="$PORT" --metrics >"$WORK/metrics1.txt"
grep -q '^# HELP dbscout_ingest_points_total ' "$WORK/metrics1.txt" \
  || { echo "FAIL: missing HELP line"; cat "$WORK/metrics1.txt"; exit 1; }
grep -q '^# TYPE dbscout_ingest_points_total counter$' "$WORK/metrics1.txt" \
  || { echo "FAIL: missing TYPE line"; exit 1; }
grep -q '^dbscout_request_seconds_bucket{.*le="+Inf"} ' "$WORK/metrics1.txt" \
  || { echo "FAIL: missing +Inf histogram bucket"; exit 1; }
POINTS1="$(scrape_counter "$WORK/metrics1.txt" dbscout_ingest_points_total)"
[[ "$POINTS1" -eq 2000 ]] \
  || { echo "FAIL: ingest_points_total=$POINTS1, want 2000"; exit 1; }
QUERIES1="$(scrape_counter "$WORK/metrics1.txt" \
  'dbscout_request_seconds_count{verb="query"}')"
[[ "$QUERIES1" -ge 1 ]] || { echo "FAIL: no query latency samples"; exit 1; }

echo "== second scrape: counters must be monotone non-decreasing"
"$CLIENT" --port="$PORT" --collection=smoke --query=1000,1000 >/dev/null
"$CLIENT" --port="$PORT" --metrics >"$WORK/metrics2.txt"
POINTS2="$(scrape_counter "$WORK/metrics2.txt" dbscout_ingest_points_total)"
QUERIES2="$(scrape_counter "$WORK/metrics2.txt" \
  'dbscout_request_seconds_count{verb="query"}')"
[[ "$POINTS2" -ge "$POINTS1" ]] \
  || { echo "FAIL: ingest_points_total went backwards ($POINTS1 -> $POINTS2)"; exit 1; }
[[ "$QUERIES2" -gt "$QUERIES1" ]] \
  || { echo "FAIL: query count did not advance ($QUERIES1 -> $QUERIES2)"; exit 1; }
echo "   ingest_points_total=$POINTS2 query_count=$QUERIES1->$QUERIES2"

echo "== tracing: stamped ingest, trace dump, slow-request log"
TRACED="$("$CLIENT" --port="$PORT" --collection=smoke --trace \
  --ingest="$WORK/blobs.dbsc")"
echo "   $TRACED"
TRACE_ID="$(sed -n 's/.* trace=\([0-9a-f]\{16\}\).*/\1/p' <<<"$TRACED")"
[[ -n "$TRACE_ID" ]] || { echo "FAIL: traced ingest printed no trace id"; exit 1; }
"$CLIENT" --port="$PORT" --trace-dump --trace-id="$TRACE_ID" \
  >"$WORK/trace.json" 2>"$WORK/trace.err"
[[ -s "$WORK/trace.json" ]] || { echo "FAIL: empty trace dump"; exit 1; }
for span in ingest frame_decode queue_wait snapshot_publish; do
  grep -q "\"name\":\"$span\"" "$WORK/trace.json" \
    || { echo "FAIL: trace dump missing $span span"; cat "$WORK/trace.json"; exit 1; }
done
grep -q "\"$TRACE_ID\"" "$WORK/trace.json" \
  || { echo "FAIL: trace dump lacks the request's trace id"; exit 1; }
grep -q "slow request.*trace=$TRACE_ID" "$WORK/serve.log" \
  || { echo "FAIL: slow-request log has no line for trace=$TRACE_ID"; exit 1; }
echo "   trace=$TRACE_ID spans + slow-request log line ok"

echo "== health: running server must be ready"
HEALTH="$("$CLIENT" --port="$PORT" --health)"
echo "   $HEALTH"
grep -q "state=ready" <<<"$HEALTH" || { echo "FAIL: server not ready"; exit 1; }

echo "== durability: ingest, kill -9, restart over the same --data-dir"
WAL_INSPECT="$BUILD_DIR/tools/wal_inspect"
[[ -x "$WAL_INSPECT" ]] || { echo "missing binary: $WAL_INSPECT"; exit 1; }
DATA_DIR="$WORK/data"
DURABLE_PID=""
cleanup_durable() {
  [[ -n "$DURABLE_PID" ]] && kill -9 "$DURABLE_PID" 2>/dev/null || true
}
trap 'cleanup_durable; cleanup' EXIT

wait_port() {  # wait_port LOGFILE PID -> port on stdout
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$1")"
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    kill -0 "$2" 2>/dev/null || { cat "$1" >&2; return 1; }
    sleep 0.1
  done
  echo "server never reported its port" >&2
  return 1
}

"$SERVE" --eps=0.7 --min-pts=5 --port=0 --data-dir="$DATA_DIR" \
  --wal-fsync=interval >"$WORK/serve_durable1.log" 2>&1 &
DURABLE_PID=$!
DPORT="$(wait_port "$WORK/serve_durable1.log" "$DURABLE_PID")"
echo "   port=$DPORT"
"$CLIENT" --port="$DPORT" --collection=smoke --ingest="$WORK/blobs.dbsc"
DSTATS1="$("$CLIENT" --port="$DPORT" --collection=smoke --stats | head -1)"
DPROBE1="$("$CLIENT" --port="$DPORT" --collection=smoke --query=1000,1000)"
echo "   before kill: $DSTATS1"

kill -9 "$DURABLE_PID"
wait "$DURABLE_PID" 2>/dev/null || true
DURABLE_PID=""

echo "== wal_inspect after kill -9 (torn tail ok, corruption is not)"
"$WAL_INSPECT" --quiet "$DATA_DIR" \
  || { echo "FAIL: wal_inspect found corruption"; exit 1; }

"$SERVE" --eps=0.7 --min-pts=5 --port=0 --data-dir="$DATA_DIR" \
  --wal-fsync=interval >"$WORK/serve_durable2.log" 2>&1 &
DURABLE_PID=$!
DPORT="$(wait_port "$WORK/serve_durable2.log" "$DURABLE_PID")" \
  || { echo "FAIL: restart after kill -9 did not come up"; exit 1; }
echo "   restarted port=$DPORT"
DSTATS2="$("$CLIENT" --port="$DPORT" --collection=smoke --stats | head -1)"
DPROBE2="$("$CLIENT" --port="$DPORT" --collection=smoke --query=1000,1000)"
echo "   after restart: $DSTATS2"

stat_field() {  # stat_field LINE NAME -> value
  sed -n "s/.*$2=\([0-9][0-9]*\).*/\1/p" <<<"$1"
}
LIVE1="$(stat_field "$DSTATS1" live)"
LIVE2="$(stat_field "$DSTATS2" live)"
[[ -n "$LIVE1" && "$LIVE1" -eq "$LIVE2" ]] \
  || { echo "FAIL: live points changed across restart ($LIVE1 -> $LIVE2)"; exit 1; }
EPOCH1="$(stat_field "$DSTATS1" epoch)"
EPOCH2="$(stat_field "$DSTATS2" epoch)"
[[ "$EPOCH1" -eq "$EPOCH2" ]] \
  || { echo "FAIL: epoch changed across restart ($EPOCH1 -> $EPOCH2)"; exit 1; }
OUT1="$(stat_field "$DSTATS1" outliers)"
OUT2="$(stat_field "$DSTATS2" outliers)"
[[ "$OUT1" -eq "$OUT2" ]] \
  || { echo "FAIL: outlier count changed across restart ($OUT1 -> $OUT2)"; exit 1; }
grep -q "kind=outlier" <<<"$DPROBE2" \
  || { echo "FAIL: far probe after restart not an outlier"; exit 1; }
[[ "$DPROBE1" == "$DPROBE2" ]] \
  || { echo "FAIL: probe answer changed across restart ($DPROBE1 -> $DPROBE2)"; exit 1; }

echo "== health across recovery: not-ready while replaying, then ready"
# Grow the WAL so the next crash recovery is long enough to observe: the
# server accepts connections before replay finishes (HEALTH answers
# not-ready/recovering; collection verbs are unavailable), and prints its
# banner only once it is ready.
for i in $(seq 1 25); do
  "$CLIENT" --port="$DPORT" --collection="bulk$i" \
    --ingest="$WORK/blobs.dbsc" >/dev/null
done
kill -9 "$DURABLE_PID"
wait "$DURABLE_PID" 2>/dev/null || true
DURABLE_PID=""

# A fixed port chosen up front lets us poll HEALTH before the banner
# (with --port=0 the port is only known after recovery completes).
FPORT="$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')"
"$SERVE" --eps=0.7 --min-pts=5 --port="$FPORT" --data-dir="$DATA_DIR" \
  --wal-fsync=interval >"$WORK/serve_durable3.log" 2>&1 &
DURABLE_PID=$!
SAW_NOTREADY=0
READY=0
for _ in $(seq 1 300); do
  H="$("$CLIENT" --port="$FPORT" --health 2>/dev/null)" || { sleep 0.05; continue; }
  if grep -q "state=not-ready" <<<"$H"; then
    grep -q "recovery=recovering" <<<"$H" \
      || { echo "FAIL: not-ready without recovering: $H"; exit 1; }
    SAW_NOTREADY=1
  elif grep -q "state=ready" <<<"$H"; then
    READY=1
    break
  fi
done
[[ "$READY" -eq 1 ]] || { echo "FAIL: server never became ready"; exit 1; }
[[ "$SAW_NOTREADY" -eq 1 ]] \
  || { echo "FAIL: never observed the not-ready recovery window"; exit 1; }
echo "   observed not-ready/recovering, then ready on port $FPORT"

kill -9 "$DURABLE_PID"
wait "$DURABLE_PID" 2>/dev/null || true
DURABLE_PID=""

echo "== graceful shutdown"
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
[[ "$EXIT_CODE" -eq 0 ]] || { echo "FAIL: server exit code $EXIT_CODE"; cat "$WORK/serve.log"; exit 1; }

echo "PASS: serve smoke ok ($OUTLIERS outliers)"

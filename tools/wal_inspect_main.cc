// Offline WAL / snapshot inspector: prints what a collection directory
// (or a single wal-*.log / snap-*.snap file) holds, record by record,
// without touching the files. The exit status distinguishes clean logs
// from torn tails from hard corruption, so scripts can assert on it:
//
//   0  everything scanned decoded cleanly (a torn tail is reported but
//      still exit 0 with --allow-torn, the default; use --strict to make
//      a torn tail exit 3)
//   1  usage / io error
//   2  hard corruption: a complete frame with a bad CRC, a bad magic, or
//      an undecodable record (recovery would refuse this file)
//   3  torn tail under --strict
//
// usage: wal_inspect [--strict] [--quiet] PATH...
//   PATH is a collection directory, a wal segment, or a snapshot file.

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "storage/snapshot.h"
#include "storage/store.h"
#include "storage/wal.h"

namespace {

using dbscout::storage::CollectionState;
using dbscout::storage::DecodeWalRecord;
using dbscout::storage::ReadSnapshotFile;
using dbscout::storage::ScanWalFile;
using dbscout::storage::WalRecord;
using dbscout::storage::WalRecordType;
using dbscout::storage::WalScan;

struct Flags {
  bool strict = false;
  bool quiet = false;
};

const char* RecordName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCreate:
      return "CREATE";
    case WalRecordType::kIngest:
      return "INGEST";
    case WalRecordType::kExpire:
      return "EXPIRE";
    case WalRecordType::kConfigure:
      return "CONFIGURE";
    case WalRecordType::kPlan:
      return "PLAN";
  }
  return "?";
}

void PrintRecord(const WalRecord& record, size_t index, const Flags& flags) {
  if (flags.quiet) {
    return;
  }
  std::cout << "  [" << index << "] " << RecordName(record.type);
  switch (record.type) {
    case WalRecordType::kCreate:
      std::cout << " dims=" << record.dims << " ttl=" << record.ttl_seconds;
      break;
    case WalRecordType::kIngest:
      std::cout << " base_epoch=" << record.base_epoch << " points="
                << (record.dims == 0 ? 0
                                     : record.coords.size() / record.dims)
                << " dims=" << record.dims;
      break;
    case WalRecordType::kExpire:
      std::cout << " [" << record.expire_begin << ", " << record.expire_end
                << ")";
      break;
    case WalRecordType::kConfigure:
      std::cout << " ttl=" << record.ttl_seconds;
      break;
    case WalRecordType::kPlan:
      std::cout << " halo=" << record.halo
                << " stripes=" << record.stripes.size();
      break;
  }
  std::cout << "\n";
}

// Returns the worst exit code seen for one wal segment.
int InspectWal(const std::string& path, const Flags& flags) {
  auto scan = ScanWalFile(path);
  if (!scan.ok()) {
    std::cout << path << ": CORRUPT: " << scan.status().message() << "\n";
    return 2;
  }
  std::cout << path << ": seq=" << scan->seq << " frames="
            << scan->frames.size() << " valid_bytes=" << scan->valid_bytes
            << (scan->torn ? " TORN-TAIL" : "") << "\n";
  size_t index = 0;
  for (const std::vector<uint8_t>& frame : scan->frames) {
    auto record = DecodeWalRecord(
        std::span<const uint8_t>(frame.data(), frame.size()));
    if (!record.ok()) {
      std::cout << "  [" << index << "] UNDECODABLE: "
                << record.status().message() << "\n";
      return 2;
    }
    PrintRecord(*record, index, flags);
    ++index;
  }
  return scan->torn && flags.strict ? 3 : 0;
}

int InspectSnapshot(const std::string& path, const Flags& flags) {
  auto state = ReadSnapshotFile(path);
  if (!state.ok()) {
    std::cout << path << ": CORRUPT: " << state.status().message() << "\n";
    return 2;
  }
  std::cout << path << ": dims=" << state->dims << " epoch=" << state->epoch
            << " window_begin=" << state->window_begin
            << " ttl=" << state->ttl_seconds << " live="
            << (state->epoch - state->window_begin);
  if (state->has_plan) {
    std::cout << " plan{halo=" << state->plan_halo
              << " stripes=" << state->plan_stripes.size() << "}";
  }
  std::cout << "\n";
  (void)flags;
  return 0;
}

int InspectPath(const std::string& path, const Flags& flags) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> children;
    for (const fs::directory_entry& entry : fs::directory_iterator(path, ec)) {
      children.push_back(entry.path().string());
    }
    if (ec) {
      std::cerr << "wal_inspect: scan " << path << ": " << ec.message()
                << "\n";
      return 1;
    }
    std::sort(children.begin(), children.end());
    int worst = 0;
    for (const std::string& child : children) {
      worst = std::max(worst, InspectPath(child, flags));
    }
    return worst;
  }
  const std::string name = fs::path(path).filename().string();
  if (name.rfind("wal-", 0) == 0) {
    return InspectWal(path, flags);
  }
  if (name.rfind("snap-", 0) == 0) {
    return InspectSnapshot(path, flags);
  }
  std::cerr << "wal_inspect: skipping unrecognized file " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      flags.strict = true;
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else if (arg == "--allow-torn") {
      flags.strict = false;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "usage: wal_inspect [--strict] [--quiet] PATH...\n";
      return 1;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: wal_inspect [--strict] [--quiet] PATH...\n";
    return 1;
  }
  int worst = 0;
  for (const std::string& path : paths) {
    worst = std::max(worst, InspectPath(path, flags));
  }
  return worst;
}
